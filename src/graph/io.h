// Plain-text edge-list persistence.
//
// Format ("dcs edge list"):
//   # comment lines start with '#'
//   <num_vertices>
//   <u> <v> <weight>      one line per undirected edge, 0 <= u,v < n, u != v
//
// Weights parse as doubles; duplicate edges accumulate (GraphBuilder
// semantics). This is the interchange format of the examples and of users
// bringing their own graphs.

#ifndef DCS_GRAPH_IO_H_
#define DCS_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Reads a graph in dcs edge-list format from a stream.
Result<Graph> ReadEdgeList(std::istream& in);

/// Reads a graph in dcs edge-list format from a file.
Result<Graph> ReadEdgeListFile(const std::string& path);

/// Writes a graph in dcs edge-list format to a stream.
Status WriteEdgeList(const Graph& graph, std::ostream& out);

/// Writes a graph in dcs edge-list format to a file.
Status WriteEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace dcs

#endif  // DCS_GRAPH_IO_H_
