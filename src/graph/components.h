// Connected components — of a whole graph and of induced subgraphs.
//
// DCSAD prefers connected subgraphs (Property 1): Algorithm 2 line 9 replaces
// a disconnected greedy solution S by its best-density connected component of
// GD(S). Components here consider *all* edges regardless of weight sign.

#ifndef DCS_GRAPH_COMPONENTS_H_
#define DCS_GRAPH_COMPONENTS_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcs {

/// \brief Component label per vertex, labels dense in [0, num_components).
struct ComponentLabeling {
  std::vector<VertexId> label;   ///< label[v] in [0, num_components)
  VertexId num_components = 0;

  /// Expands the labeling into explicit vertex lists.
  std::vector<std::vector<VertexId>> Groups() const;
};

/// Connected components of the whole graph (BFS; O(n + m)).
ComponentLabeling ConnectedComponents(const Graph& graph);

/// \brief Connected components of the induced subgraph G(S).
///
/// Returns one vertex list per component (vertices keep their original ids).
/// Duplicate ids in `subset` are ignored. O(|S| + edges within S), using a
/// membership bitmap of size n.
std::vector<std::vector<VertexId>> InducedComponents(
    const Graph& graph, std::span<const VertexId> subset);

/// True iff the induced subgraph G(S) is connected (empty/singleton count as
/// connected).
bool IsInducedConnected(const Graph& graph, std::span<const VertexId> subset);

}  // namespace dcs

#endif  // DCS_GRAPH_COMPONENTS_H_
