#include "graph/io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"

namespace dcs {
namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // blank
}

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in) {
  std::string line;
  size_t line_number = 0;
  // Header: vertex count.
  long long n = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream header(line);
    if (!(header >> n) || n < 0) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected non-negative vertex count");
    }
    break;
  }
  if (n < 0) return Status::IoError("missing vertex-count header");
  GraphBuilder builder(static_cast<VertexId>(n));
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream row(line);
    long long u, v;
    double w;
    if (!(row >> u >> v >> w)) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": expected '<u> <v> <weight>'");
    }
    std::string trailing;
    if (row >> trailing) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": trailing tokens after edge");
    }
    if (u < 0 || v < 0 || u >= n || v >= n) {
      return Status::IoError("line " + std::to_string(line_number) +
                             ": endpoint out of range");
    }
    Status added = builder.AddEdge(static_cast<VertexId>(u),
                                   static_cast<VertexId>(v), w);
    if (!added.ok()) {
      return Status::IoError("line " + std::to_string(line_number) + ": " +
                             added.message());
    }
  }
  return builder.Build();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadEdgeList(in);
}

Status WriteEdgeList(const Graph& graph, std::ostream& out) {
  out << "# dcs edge list: <n> header then '<u> <v> <weight>' rows\n";
  out << graph.NumVertices() << "\n";
  out.precision(17);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (u < nb.to) out << u << " " << nb.to << " " << nb.weight << "\n";
    }
  }
  if (!out) return Status::IoError("stream write failed");
  return Status::OK();
}

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteEdgeList(graph, out);
}

}  // namespace dcs
