// Difference-graph construction (§III-B, §III-D of the paper).
//
// Given G1 and G2 on the same vertex set, the difference graph is
// GD = <V, ED, D> with D = A2 − α·A1 (α = 1 is the standard DCS setting);
// ED keeps only pairs with D(u,v) != 0. Both "Weighted" and "Discrete"
// settings of §VI are supported: the Discrete setting maps raw weight
// differences to small integer levels to keep a few very heavy edges from
// dominating the contrast subgraph.

#ifndef DCS_GRAPH_DIFFERENCE_H_
#define DCS_GRAPH_DIFFERENCE_H_

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// \brief D = A2 − alpha * A1 with exact-zero entries dropped.
///
/// Fails if the graphs have different vertex counts or alpha is not finite
/// and positive.
Result<Graph> BuildDifferenceGraph(const Graph& g1, const Graph& g2,
                                   double alpha = 1.0);

/// \brief Thresholds of the paper's Discrete setting (§VI-B, DBLP values by
/// default): raw difference d maps to
///   d >= strong_pos          -> +2
///   weak_pos <= d < strong_pos -> +1
///   strong_neg < d < 0       -> -1
///   d <= strong_neg          -> -2
///   0 <= d < weak_pos        ->  0 (edge dropped)
struct DiscretizeSpec {
  double strong_pos = 5.0;
  double weak_pos = 2.0;
  double strong_neg = -4.0;

  /// Discrete output levels; the paper uses +/-2 and +/-1.
  double level_two = 2.0;
  double level_one = 1.0;

  /// Validates threshold ordering (strong_neg < 0 < weak_pos <= strong_pos,
  /// 0 < level_one <= level_two).
  Status Validate() const;

  /// Applies the mapping to a single raw difference.
  double Map(double d) const;

  friend bool operator==(const DiscretizeSpec&,
                         const DiscretizeSpec&) = default;
};

/// \brief Applies a DiscretizeSpec to every edge weight of `gd`, dropping
/// edges that map to zero.
Result<Graph> DiscretizeWeights(const Graph& gd, const DiscretizeSpec& spec);

/// \brief The largest α for which the α-scaled DCS problems have a positive
/// optimum.
///
/// By §III-B the optimal density/affinity contrast on D = A2 − α·A1 is
/// positive iff D has a positive entry, i.e. iff α < max over pairs of
/// A2(u,v)/A1(u,v). Returns +infinity when some edge of G2 is absent from
/// G1 (that pair stays positive for every α), and 0 when G2 has no edges.
/// Fails on mismatched vertex sets.
Result<double> AlphaUpperBound(const Graph& g1, const Graph& g2);

}  // namespace dcs

#endif  // DCS_GRAPH_DIFFERENCE_H_
