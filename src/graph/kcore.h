// Unweighted k-core decomposition.
//
// NewSEA's smart initialization (§V-D, Theorem 6) bounds the largest clique
// containing u by τ_u + 1, where τ_u is u's core number in GD+. Core numbers
// are computed with the standard O(n + m) bucket peeling algorithm
// (Batagelj–Zaversnik / [22] in the paper).

#ifndef DCS_GRAPH_KCORE_H_
#define DCS_GRAPH_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dcs {

/// \brief Core number τ_v for every vertex (edge weights ignored).
///
/// τ_v is the largest k such that v belongs to a subgraph in which every
/// vertex has (unweighted) degree >= k.
std::vector<uint32_t> CoreNumbers(const Graph& graph);

/// \brief Degeneracy of the graph: max over vertices of the core number.
uint32_t Degeneracy(const Graph& graph);

}  // namespace dcs

#endif  // DCS_GRAPH_KCORE_H_
