// Unweighted k-core decomposition.
//
// NewSEA's smart initialization (§V-D, Theorem 6) bounds the largest clique
// containing u by τ_u + 1, where τ_u is u's core number in GD+. Core numbers
// are computed with the standard O(n + m) bucket peeling algorithm
// (Batagelj–Zaversnik / [22] in the paper).

#ifndef DCS_GRAPH_KCORE_H_
#define DCS_GRAPH_KCORE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace dcs {

/// \brief Core number τ_v for every vertex (edge weights ignored).
///
/// τ_v is the largest k such that v belongs to a subgraph in which every
/// vertex has (unweighted) degree >= k.
std::vector<uint32_t> CoreNumbers(const Graph& graph);

/// \brief Degeneracy of the graph: max over vertices of the core number.
uint32_t Degeneracy(const Graph& graph);

/// \brief Incremental core maintenance after inserting undirected edge
/// (u, v) — the traversal algorithm of the streaming k-core literature.
///
/// `graph` must contain the edge; `cores` must hold the exact core numbers
/// of the graph *without* it, and is updated in place to equal
/// CoreNumbers(graph with the edge) — a single insertion raises cores by at
/// most 1, and only inside the affected subcore, so the cost is the size of
/// that subcore rather than O(n + m). Vertices whose core changed are
/// appended to `changed`.
///
/// Batch replay: adjacency reads skip pairs listed in `hidden` (as
/// PackVertexPair keys), so a caller holding only the *final* CSR snapshot
/// of a batch can apply its insertions one at a time — hide the
/// not-yet-applied insertions, shrink the set as each edge is processed.
void CoreNumbersAfterInsert(const Graph& graph, VertexId u, VertexId v,
                            const std::unordered_set<uint64_t>& hidden,
                            std::vector<uint32_t>* cores,
                            std::vector<VertexId>* changed);

/// \brief Incremental core maintenance after removing undirected edge
/// (u, v); the mirror of CoreNumbersAfterInsert.
///
/// `graph` must *not* contain the edge (for batch replay against the
/// pre-batch snapshot, add the already-removed pairs — including (u, v)
/// itself — to `hidden`); `cores` must hold the exact core numbers of the
/// graph with the edge, and is updated in place to the post-removal values.
void CoreNumbersAfterRemove(const Graph& graph, VertexId u, VertexId v,
                            const std::unordered_set<uint64_t>& hidden,
                            std::vector<uint32_t>* cores,
                            std::vector<VertexId>* changed);

}  // namespace dcs

#endif  // DCS_GRAPH_KCORE_H_
