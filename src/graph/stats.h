// Induced-subgraph statistics used throughout the paper's evaluation:
// total degree W(S), average degree ρ(S) = W(S)/|S|, edge density W(S)/|S|²,
// and positive-clique checks.
//
// Convention (Table I): W(S) sums A(u,v) over *ordered* pairs of E(S), i.e.
// every undirected edge counts twice, so W(S) equals the sum of induced
// degrees. A single edge {u,v} therefore has ρ({u,v}) = A(u,v), matching the
// O(n)-approximation argument of §IV-B.

#ifndef DCS_GRAPH_STATS_H_
#define DCS_GRAPH_STATS_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace dcs {

/// \brief W(S): total induced degree (each undirected edge counted twice).
/// O(sum of degrees of S) using a membership bitmap.
double TotalDegree(const Graph& graph, std::span<const VertexId> subset);

/// \brief ρ(S) = W(S)/|S|; 0 for an empty subset.
double AverageDegreeDensity(const Graph& graph,
                            std::span<const VertexId> subset);

/// \brief Edge density W(S)/|S|² — the discrete analog of graph affinity.
double EdgeDensity(const Graph& graph, std::span<const VertexId> subset);

/// \brief Number of undirected edges inside G(S).
size_t InducedEdgeCount(const Graph& graph, std::span<const VertexId> subset);

/// \brief True iff every pair of distinct vertices of S is adjacent in
/// `graph` (singletons and empty sets are cliques).
bool IsClique(const Graph& graph, std::span<const VertexId> subset);

/// \brief True iff S induces a clique whose edge weights are all positive —
/// a "positive clique" in GD (§V-C).
bool IsPositiveClique(const Graph& graph, std::span<const VertexId> subset);

/// \brief Induced weighted degree W(v; G(S)) for every v in S, in the order
/// of `subset`.
std::vector<double> InducedWeightedDegrees(const Graph& graph,
                                           std::span<const VertexId> subset);

}  // namespace dcs

#endif  // DCS_GRAPH_STATS_H_
