#include "store/job_journal.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "util/checksum.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace dcs {

namespace {

// ---- on-disk framing -------------------------------------------------------
//
// The PR 6 page format under the journal's own magic. Superblock layout:
// magic u64 | version u32 | endian u32 | checksum u64 of the preceding 16
// bytes | reserved u64. Page header layout: magic u32 | type u32 | job id
// u64 (the key) | payload_bytes u64 | payload checksum u64.

// "DCSJRNL1" as a little-endian u64.
constexpr uint64_t kJournalMagic = 0x314C4E524A534344ull;
// "PAGE" as a little-endian u32 (same frame magic as the artifact store —
// the superblock magic is what distinguishes the two files).
constexpr uint32_t kPageMagic = 0x45474150u;
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr size_t kSuperblockBytes = 32;
constexpr size_t kPageHeaderBytes = 32;

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(std::span<const uint8_t> bytes, size_t* cursor, uint32_t* v) {
  if (bytes.size() - *cursor < 4) return false;
  std::memcpy(v, bytes.data() + *cursor, 4);
  *cursor += 4;
  return true;
}

bool ReadU64(std::span<const uint8_t> bytes, size_t* cursor, uint64_t* v) {
  if (bytes.size() - *cursor < 8) return false;
  std::memcpy(v, bytes.data() + *cursor, 8);
  *cursor += 8;
  return true;
}

void AppendDoubleBits(double v, std::string* out) {
  AppendU64(std::bit_cast<uint64_t>(v), out);
}

bool ReadDoubleBits(std::span<const uint8_t> bytes, size_t* cursor,
                    double* v) {
  uint64_t b = 0;
  if (!ReadU64(bytes, cursor, &b)) return false;
  *v = std::bit_cast<double>(b);
  return true;
}

void AppendString(const std::string& s, std::string* out) {
  AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

bool ReadString(std::span<const uint8_t> bytes, size_t* cursor,
                std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(bytes, cursor, &len)) return false;
  if (bytes.size() - *cursor < len) return false;
  s->assign(reinterpret_cast<const char*>(bytes.data() + *cursor), len);
  *cursor += len;
  return true;
}

std::string SerializeSuperblock() {
  std::string out;
  out.reserve(kSuperblockBytes);
  AppendU64(kJournalMagic, &out);
  AppendU32(JobJournal::kFormatVersion, &out);
  AppendU32(kEndianTag, &out);
  AppendU64(PageChecksum(out.data(), out.size()), &out);
  AppendU64(0, &out);  // reserved
  DCS_CHECK(out.size() == kSuperblockBytes);
  return out;
}

bool ValidSuperblock(std::span<const uint8_t> bytes, uint32_t* version) {
  *version = 0;
  if (bytes.size() < kSuperblockBytes) return false;
  size_t cursor = 0;
  uint64_t magic = 0, checksum = 0;
  uint32_t file_version = 0, endian = 0;
  ReadU64(bytes, &cursor, &magic);
  ReadU32(bytes, &cursor, &file_version);
  ReadU32(bytes, &cursor, &endian);
  ReadU64(bytes, &cursor, &checksum);
  if (magic != kJournalMagic || endian != kEndianTag ||
      checksum != PageChecksum(bytes.data(), 16)) {
    return false;
  }
  *version = file_version;
  // A future format version is unreadable by construction: treat the whole
  // file as untrusted rather than guessing at its layout.
  return file_version == JobJournal::kFormatVersion;
}

std::string SerializePageHeader(uint32_t type, uint64_t job_id,
                                const std::string& payload) {
  std::string out;
  out.reserve(kPageHeaderBytes);
  AppendU32(kPageMagic, &out);
  AppendU32(type, &out);
  AppendU64(job_id, &out);
  AppendU64(payload.size(), &out);
  AppendU64(PageChecksum(payload.data(), payload.size()), &out);
  DCS_CHECK(out.size() == kPageHeaderBytes);
  return out;
}

struct PageHeader {
  uint32_t type = 0;
  uint64_t job_id = 0;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
};

bool ParsePageHeader(std::span<const uint8_t> bytes, size_t* cursor,
                     PageHeader* header) {
  uint32_t magic = 0;
  return ReadU32(bytes, cursor, &magic) && magic == kPageMagic &&
         ReadU32(bytes, cursor, &header->type) &&
         header->type >= JobJournal::kAdmittedRecord &&
         header->type <= JobJournal::kDoneRecord &&
         ReadU64(bytes, cursor, &header->job_id) &&
         ReadU64(bytes, cursor, &header->payload_bytes) &&
         ReadU64(bytes, cursor, &header->checksum);
}

// ---- advisory file locking / raw I/O ---------------------------------------
//
// The same flock discipline as the artifact store; the store.flock fault
// site keeps covering the degraded-to-lockless path for both files.

class ScopedFileLock {
 public:
  ScopedFileLock(int fd, int op) : fd_(fd) {
    if (FaultHit(fault_sites::kStoreFlock)) {
      fd_ = -1;
      return;
    }
    while (flock(fd_, op) != 0 && errno == EINTR) {
    }
  }
  ~ScopedFileLock() {
    if (fd_ < 0) return;
    while (flock(fd_, LOCK_UN) != 0 && errno == EINTR) {
    }
  }
  ScopedFileLock(const ScopedFileLock&) = delete;
  ScopedFileLock& operator=(const ScopedFileLock&) = delete;

 private:
  int fd_;
};

Result<uint64_t> FileSize(int fd) {
  struct stat st;
  if (fstat(fd, &st) != 0) {
    return Status::IoError(std::string("fstat failed: ") +
                           std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status ReadExact(int fd, uint64_t offset, size_t size, uint8_t* out) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = pread(fd, out + done, size - done,
                            static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IoError("unexpected end of journal file");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteExact(int fd, uint64_t offset, const std::string& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = pwrite(fd, bytes.data() + done, bytes.size() - done,
                             static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status JournalTruncated(const char* what) {
  return Status::InvalidArgument(std::string("journal ") + what +
                                 " payload truncated");
}

// ---- record payloads -------------------------------------------------------

Result<MiningRequest> DecodeRequestTail(std::span<const uint8_t> bytes,
                                        size_t cursor) {
  return JobJournal::DecodeRequest(bytes.subspan(cursor));
}

std::string SerializeAdmitted(const JournalAdmittedRecord& record) {
  std::string out;
  AppendU64(record.job_id, &out);
  AppendU32(record.tenant, &out);
  AppendU64(record.admission_index, &out);
  out += JobJournal::EncodeRequest(record.request);
  return out;
}

Result<JournalAdmittedRecord> ParseAdmitted(std::span<const uint8_t> bytes) {
  JournalAdmittedRecord record;
  size_t cursor = 0;
  if (!ReadU64(bytes, &cursor, &record.job_id) ||
      !ReadU32(bytes, &cursor, &record.tenant) ||
      !ReadU64(bytes, &cursor, &record.admission_index)) {
    return JournalTruncated("admitted");
  }
  DCS_ASSIGN_OR_RETURN(record.request, DecodeRequestTail(bytes, cursor));
  return record;
}

std::string SerializeDone(const JournalDoneRecord& record,
                          const std::string& response_content) {
  std::string out;
  AppendU64(record.job_id, &out);
  AppendU32(static_cast<uint32_t>(record.state), &out);
  AppendU32(record.status_code, &out);
  AppendString(record.status_message, &out);
  AppendU64(record.response_fingerprint, &out);
  AppendU32(record.has_response ? 1 : 0, &out);
  if (record.has_response) out += response_content;
  return out;
}

Result<JournalDoneRecord> ParseDone(std::span<const uint8_t> bytes) {
  JournalDoneRecord record;
  size_t cursor = 0;
  uint32_t state = 0, has_response = 0;
  if (!ReadU64(bytes, &cursor, &record.job_id) ||
      !ReadU32(bytes, &cursor, &state) ||
      !ReadU32(bytes, &cursor, &record.status_code) ||
      !ReadString(bytes, &cursor, &record.status_message) ||
      !ReadU64(bytes, &cursor, &record.response_fingerprint) ||
      !ReadU32(bytes, &cursor, &has_response)) {
    return JournalTruncated("done");
  }
  if (state > static_cast<uint32_t>(JournalTerminalState::kCancelled) ||
      has_response > 1) {
    return Status::InvalidArgument("journal done payload fields invalid");
  }
  record.state = static_cast<JournalTerminalState>(state);
  record.has_response = has_response != 0;
  const std::span<const uint8_t> content = bytes.subspan(cursor);
  if (!record.has_response) {
    if (!content.empty()) {
      return Status::InvalidArgument("journal done payload has trailing bytes");
    }
    return record;
  }
  // The fingerprint must match the stored content image — a checksum-valid
  // frame whose embedded fingerprint disagrees is content rot, not ours.
  if (PageChecksum(content.data(), content.size()) !=
      record.response_fingerprint) {
    return Status::InvalidArgument("journal done fingerprint mismatch");
  }
  DCS_ASSIGN_OR_RETURN(record.response,
                       JobJournal::DecodeResponseContent(content));
  return record;
}

void AppendRanking(const std::vector<RankedSubgraph>& ranking,
                   std::string* out) {
  AppendU32(static_cast<uint32_t>(ranking.size()), out);
  for (const RankedSubgraph& subgraph : ranking) {
    AppendU32(static_cast<uint32_t>(subgraph.vertices.size()), out);
    for (const VertexId v : subgraph.vertices) AppendU32(v, out);
    AppendU32(static_cast<uint32_t>(subgraph.weights.size()), out);
    for (const double w : subgraph.weights) AppendDoubleBits(w, out);
    AppendDoubleBits(subgraph.value, out);
    AppendDoubleBits(subgraph.ratio_bound, out);
    AppendU32(subgraph.positive_clique ? 1 : 0, out);
  }
}

bool ParseRanking(std::span<const uint8_t> bytes, size_t* cursor,
                  std::vector<RankedSubgraph>* ranking) {
  uint32_t count = 0;
  if (!ReadU32(bytes, cursor, &count)) return false;
  // Element counts are bounded by the remaining payload before any resize,
  // so a corrupt length cannot drive a huge allocation.
  if (count > (bytes.size() - *cursor) / 4) return false;
  ranking->resize(count);
  for (RankedSubgraph& subgraph : *ranking) {
    uint32_t nv = 0;
    if (!ReadU32(bytes, cursor, &nv) ||
        nv > (bytes.size() - *cursor) / 4) {
      return false;
    }
    subgraph.vertices.resize(nv);
    for (VertexId& v : subgraph.vertices) {
      if (!ReadU32(bytes, cursor, &v)) return false;
    }
    uint32_t nw = 0;
    if (!ReadU32(bytes, cursor, &nw) ||
        nw > (bytes.size() - *cursor) / 8) {
      return false;
    }
    subgraph.weights.resize(nw);
    for (double& w : subgraph.weights) {
      if (!ReadDoubleBits(bytes, cursor, &w)) return false;
    }
    uint32_t clique = 0;
    if (!ReadDoubleBits(bytes, cursor, &subgraph.value) ||
        !ReadDoubleBits(bytes, cursor, &subgraph.ratio_bound) ||
        !ReadU32(bytes, cursor, &clique) || clique > 1) {
      return false;
    }
    subgraph.positive_clique = clique != 0;
  }
  return true;
}

}  // namespace

// ---- request / response images ---------------------------------------------

std::string JobJournal::EncodeRequest(const MiningRequest& request) {
  std::string out;
  AppendU32(static_cast<uint32_t>(request.measure), &out);
  AppendDoubleBits(request.alpha, &out);
  const uint8_t flags[8] = {
      static_cast<uint8_t>(request.flip ? 1 : 0),
      static_cast<uint8_t>(request.discretize ? 1 : 0),
      static_cast<uint8_t>(request.clamp_weights_above ? 1 : 0),
      static_cast<uint8_t>(request.disjoint ? 1 : 0),
      static_cast<uint8_t>(request.warm_start ? 1 : 0),
      static_cast<uint8_t>(request.ga_solver.collect_cliques ? 1 : 0),
      static_cast<uint8_t>(request.ga_solver.assume_nonnegative ? 1 : 0),
      static_cast<uint8_t>(request.ga_solver.fast_math ? 1 : 0)};
  out.append(reinterpret_cast<const char*>(flags), sizeof(flags));
  if (request.discretize) {
    AppendDoubleBits(request.discretize->strong_pos, &out);
    AppendDoubleBits(request.discretize->weak_pos, &out);
    AppendDoubleBits(request.discretize->strong_neg, &out);
    AppendDoubleBits(request.discretize->level_two, &out);
    AppendDoubleBits(request.discretize->level_one, &out);
  }
  if (request.clamp_weights_above) {
    AppendDoubleBits(*request.clamp_weights_above, &out);
  }
  AppendU32(request.top_k, &out);
  AppendDoubleBits(request.min_density, &out);
  AppendDoubleBits(request.min_affinity, &out);
  const DcsgaOptions& ga = request.ga_solver;
  AppendU32(static_cast<uint32_t>(ga.shrink), &out);
  AppendDoubleBits(ga.seacd.descent.epsilon_scale, &out);
  AppendU64(ga.seacd.descent.max_iterations, &out);
  AppendU32(ga.seacd.max_rounds, &out);
  AppendDoubleBits(ga.sea.replicator.objective_tolerance, &out);
  AppendU64(ga.sea.replicator.max_sweeps, &out);
  AppendU32(ga.sea.max_rounds, &out);
  AppendDoubleBits(ga.refinement_descent.epsilon_scale, &out);
  AppendU64(ga.refinement_descent.max_iterations, &out);
  AppendU32(ga.parallelism, &out);
  // ga.cancel is a borrowed pointer into the crashed process — by
  // construction it is never serialized; recovery re-owns cancellation.
  AppendU32(std::bit_cast<uint32_t>(request.priority), &out);
  AppendDoubleBits(request.deadline_seconds, &out);
  AppendString(request.ad_solver_name, &out);
  AppendString(request.ga_solver_name, &out);
  return out;
}

Result<MiningRequest> JobJournal::DecodeRequest(
    std::span<const uint8_t> bytes) {
  MiningRequest request;
  size_t cursor = 0;
  uint32_t measure = 0;
  if (!ReadU32(bytes, &cursor, &measure) ||
      !ReadDoubleBits(bytes, &cursor, &request.alpha)) {
    return JournalTruncated("request");
  }
  if (measure > static_cast<uint32_t>(Measure::kBoth)) {
    return Status::InvalidArgument("journal request measure out of range");
  }
  request.measure = static_cast<Measure>(measure);
  if (bytes.size() - cursor < 8) return JournalTruncated("request");
  const uint8_t* flags = bytes.data() + cursor;
  cursor += 8;
  for (size_t i = 0; i < 8; ++i) {
    if (flags[i] > 1) {
      return Status::InvalidArgument("journal request flags invalid");
    }
  }
  request.flip = flags[0] != 0;
  if (flags[1] != 0) {
    DiscretizeSpec spec;
    if (!ReadDoubleBits(bytes, &cursor, &spec.strong_pos) ||
        !ReadDoubleBits(bytes, &cursor, &spec.weak_pos) ||
        !ReadDoubleBits(bytes, &cursor, &spec.strong_neg) ||
        !ReadDoubleBits(bytes, &cursor, &spec.level_two) ||
        !ReadDoubleBits(bytes, &cursor, &spec.level_one)) {
      return JournalTruncated("request");
    }
    request.discretize = spec;
  }
  if (flags[2] != 0) {
    double clamp = 0.0;
    if (!ReadDoubleBits(bytes, &cursor, &clamp)) {
      return JournalTruncated("request");
    }
    request.clamp_weights_above = clamp;
  }
  request.disjoint = flags[3] != 0;
  request.warm_start = flags[4] != 0;
  request.ga_solver.collect_cliques = flags[5] != 0;
  request.ga_solver.assume_nonnegative = flags[6] != 0;
  request.ga_solver.fast_math = flags[7] != 0;
  uint32_t shrink = 0, priority_bits = 0;
  DcsgaOptions& ga = request.ga_solver;
  if (!ReadU32(bytes, &cursor, &request.top_k) ||
      !ReadDoubleBits(bytes, &cursor, &request.min_density) ||
      !ReadDoubleBits(bytes, &cursor, &request.min_affinity) ||
      !ReadU32(bytes, &cursor, &shrink) ||
      !ReadDoubleBits(bytes, &cursor, &ga.seacd.descent.epsilon_scale) ||
      !ReadU64(bytes, &cursor, &ga.seacd.descent.max_iterations) ||
      !ReadU32(bytes, &cursor, &ga.seacd.max_rounds) ||
      !ReadDoubleBits(bytes, &cursor,
                      &ga.sea.replicator.objective_tolerance) ||
      !ReadU64(bytes, &cursor, &ga.sea.replicator.max_sweeps) ||
      !ReadU32(bytes, &cursor, &ga.sea.max_rounds) ||
      !ReadDoubleBits(bytes, &cursor,
                      &ga.refinement_descent.epsilon_scale) ||
      !ReadU64(bytes, &cursor, &ga.refinement_descent.max_iterations) ||
      !ReadU32(bytes, &cursor, &ga.parallelism) ||
      !ReadU32(bytes, &cursor, &priority_bits) ||
      !ReadDoubleBits(bytes, &cursor, &request.deadline_seconds) ||
      !ReadString(bytes, &cursor, &request.ad_solver_name) ||
      !ReadString(bytes, &cursor, &request.ga_solver_name)) {
    return JournalTruncated("request");
  }
  if (shrink > static_cast<uint32_t>(ShrinkKind::kReplicator)) {
    return Status::InvalidArgument("journal request shrink kind invalid");
  }
  ga.shrink = static_cast<ShrinkKind>(shrink);
  request.priority = std::bit_cast<int32_t>(priority_bits);
  if (cursor != bytes.size()) {
    return Status::InvalidArgument("journal request has trailing bytes");
  }
  return request;
}

std::string JobJournal::EncodeResponseContent(const MiningResponse& response) {
  std::string out;
  AppendRanking(response.average_degree, &out);
  AppendRanking(response.graph_affinity, &out);
  return out;
}

Result<MiningResponse> JobJournal::DecodeResponseContent(
    std::span<const uint8_t> bytes) {
  MiningResponse response;
  size_t cursor = 0;
  if (!ParseRanking(bytes, &cursor, &response.average_degree) ||
      !ParseRanking(bytes, &cursor, &response.graph_affinity) ||
      cursor != bytes.size()) {
    return Status::InvalidArgument("journal response content invalid");
  }
  return response;
}

uint64_t JobJournal::ResponseFingerprint(const MiningResponse& response) {
  const std::string content = EncodeResponseContent(response);
  return PageChecksum(content.data(), content.size());
}

// ---- open / scan -----------------------------------------------------------

JobJournal::JobJournal(std::string path, JobJournalOptions options, int fd)
    : path_(std::move(path)), options_(options), fd_(fd) {
  if (options_.durability == JournalDurability::kGroupCommit) {
    flusher_ = std::thread(&JobJournal::FlusherLoop, this);
  }
}

Result<std::shared_ptr<JobJournal>> JobJournal::Open(
    std::string path, JobJournalOptions options) {
  const int flags = options.create_if_missing ? (O_RDWR | O_CREAT) : O_RDWR;
  const int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
  if (fd < 0) {
    const std::string reason = std::strerror(errno);
    if (errno == ENOENT) {
      return Status::NotFound("job journal " + path + ": " + reason);
    }
    return Status::IoError("cannot open job journal " + path + ": " + reason);
  }
  auto journal = std::shared_ptr<JobJournal>(
      new JobJournal(std::move(path), options, fd));
  {
    std::lock_guard<std::mutex> lock(journal->mutex_);
    journal->ScanLocked();
  }
  return journal;
}

JobJournal::~JobJournal() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (dirty_) (void)SyncLocked();  // final group-commit flush
    ::close(fd_);
  }
  fd_ = -1;
}

void JobJournal::ScanLocked() {
  frames_.clear();
  admitted_records_ = started_records_ = done_records_ = 0;
  ScopedFileLock file_lock(fd_, LOCK_SH);
  Result<uint64_t> size = FileSize(fd_);
  if (!size.ok()) {
    reliable_end_ = 0;
    tail_unreliable_ = true;
    return;
  }
  if (*size == 0) {
    // Brand-new file: the first append writes the superblock.
    reliable_end_ = 0;
    tail_unreliable_ = true;
    return;
  }

  // Structural walk only — superblock plus the page-header chain. Payload
  // checksums are verified where the bytes are used: Replay and Fsck.
  uint8_t superblock[kSuperblockBytes];
  uint32_t version = 0;
  if (!ReadExact(fd_, 0, kSuperblockBytes, superblock).ok() ||
      !ValidSuperblock(std::span<const uint8_t>(superblock, kSuperblockBytes),
                       &version)) {
    reliable_end_ = 0;
    tail_unreliable_ = true;
    ++corrupt_pages_;
    return;
  }

  uint64_t cursor = kSuperblockBytes;
  reliable_end_ = cursor;
  tail_unreliable_ = false;
  while (cursor < *size) {
    const uint64_t record_offset = cursor;
    uint8_t header_bytes[kPageHeaderBytes];
    PageHeader header;
    size_t header_cursor = 0;
    if (*size - cursor < kPageHeaderBytes ||
        !ReadExact(fd_, cursor, kPageHeaderBytes, header_bytes).ok() ||
        !ParsePageHeader(
            std::span<const uint8_t>(header_bytes, kPageHeaderBytes),
            &header_cursor, &header) ||
        header.payload_bytes > *size - cursor - kPageHeaderBytes) {
      // A torn append or header garbage: everything from here on is
      // unreachable. Stop indexing; the next append (or the recovery path's
      // TruncateUnreliableTail) truncates.
      ++corrupt_pages_;
      tail_unreliable_ = true;
      break;
    }
    cursor += kPageHeaderBytes + header.payload_bytes;
    FrameInfo frame;
    frame.offset = record_offset;
    frame.payload_bytes = header.payload_bytes;
    frame.type = header.type;
    frame.job_id = header.job_id;
    frames_.push_back(frame);
    switch (header.type) {
      case kAdmittedRecord:
        ++admitted_records_;
        break;
      case kStartedRecord:
        ++started_records_;
        break;
      default:
        ++done_records_;
    }
    reliable_end_ = cursor;
  }
}

// ---- append path -----------------------------------------------------------

Status JobJournal::ResetFileLocked() {
  if (ftruncate(fd_, 0) != 0) {
    return Status::IoError(std::string("ftruncate failed: ") +
                           std::strerror(errno));
  }
  DCS_RETURN_NOT_OK(WriteExact(fd_, 0, SerializeSuperblock()));
  frames_.clear();
  admitted_records_ = started_records_ = done_records_ = 0;
  reliable_end_ = kSuperblockBytes;
  tail_unreliable_ = false;
  return Status::OK();
}

Status JobJournal::TruncateTailLocked() {
  // Untrusted superblock (reliable_end_ == 0) rebuilds the whole file; a
  // corrupt tail is truncated back to the last valid record.
  if (reliable_end_ < kSuperblockBytes) {
    Result<uint64_t> size = FileSize(fd_);
    if (size.ok() && *size > 0) {
      ++truncations_;
      truncated_tail_bytes_ += *size;
    }
    return ResetFileLocked();
  }
  Result<uint64_t> size = FileSize(fd_);
  if (size.ok() && *size > reliable_end_) {
    ++truncations_;
    truncated_tail_bytes_ += *size - reliable_end_;
  }
  if (ftruncate(fd_, static_cast<off_t>(reliable_end_)) != 0) {
    return Status::IoError(std::string("ftruncate failed: ") +
                           std::strerror(errno));
  }
  tail_unreliable_ = false;
  return Status::OK();
}

Status JobJournal::SyncLocked() {
  // The fsync is a durability point — the crash harness kills the process
  // here — and a real fsync failure must surface (an acked Admitted record
  // that never reached the platter is a broken promise under kAlways).
  dirty_ = false;
  if (FaultHit(fault_sites::kJournalFsync)) {
    return FaultInjection::InjectedError(fault_sites::kJournalFsync);
  }
  if (fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  ++fsyncs_;
  return Status::OK();
}

Status JobJournal::AppendLocked(uint32_t type, uint64_t job_id,
                                const std::string& payload) {
  if (fd_ < 0) return Status::IoError("job journal is closed");
  ScopedFileLock file_lock(fd_, LOCK_EX);
  if (tail_unreliable_) {
    DCS_RETURN_NOT_OK(TruncateTailLocked());
  }
  // Another process may have appended since our scan; never overwrite its
  // records — append at the true end of file.
  DCS_ASSIGN_OR_RETURN(uint64_t end, FileSize(fd_));
  const uint64_t write_offset = std::max(end, reliable_end_);
  std::string frame = SerializePageHeader(type, job_id, payload);
  frame += payload;
  // Transient write failures — and the journal.append fault site — retry
  // with deterministic exponential backoff before surfacing. The pwrite
  // targets fixed offsets, so a retry over a partial write is idempotent.
  Status wrote;
  for (uint32_t attempt = 0;; ++attempt) {
    wrote = FaultHit(fault_sites::kJournalAppend)
                ? FaultInjection::InjectedError(fault_sites::kJournalAppend)
                : WriteExact(fd_, write_offset, frame);
    if (wrote.ok() || !wrote.IsIoError() ||
        attempt >= options_.max_io_retries) {
      break;
    }
    ++io_retries_;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.retry_backoff_ms * static_cast<double>(1u << attempt)));
  }
  DCS_RETURN_NOT_OK(wrote);
  FrameInfo info;
  info.offset = write_offset;
  info.payload_bytes = payload.size();
  info.type = type;
  info.job_id = job_id;
  frames_.push_back(info);
  switch (type) {
    case kAdmittedRecord:
      ++admitted_records_;
      break;
    case kStartedRecord:
      ++started_records_;
      break;
    default:
      ++done_records_;
  }
  reliable_end_ = write_offset + frame.size();
  ++appended_records_;
  if (options_.durability == JournalDurability::kAlways) {
    DCS_RETURN_NOT_OK(SyncLocked());
  } else {
    dirty_ = true;
    flusher_cv_.notify_one();
  }
  return Status::OK();
}

Status JobJournal::AppendAdmitted(const JournalAdmittedRecord& record) {
  const std::string payload = SerializeAdmitted(record);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(kAdmittedRecord, record.job_id, payload);
}

Status JobJournal::AppendStarted(uint64_t job_id) {
  std::string payload;
  AppendU64(job_id, &payload);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(kStartedRecord, job_id, payload);
}

Status JobJournal::AppendDone(const JournalDoneRecord& record) {
  JournalDoneRecord stamped = record;
  std::string content;
  if (stamped.has_response) {
    content = EncodeResponseContent(stamped.response);
    stamped.response_fingerprint = PageChecksum(content.data(),
                                                content.size());
  } else {
    stamped.response_fingerprint = 0;
  }
  const std::string payload = SerializeDone(stamped, content);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(kDoneRecord, record.job_id, payload);
}

// ---- replay ----------------------------------------------------------------

Result<std::vector<JournalReplayJob>> JobJournal::Replay() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return Status::IoError("job journal is closed");
  ScopedFileLock file_lock(fd_, LOCK_SH);

  std::unordered_map<uint64_t, size_t> by_job;  // job id -> out index
  std::vector<JournalReplayJob> out;
  for (const FrameInfo& frame : frames_) {
    std::vector<uint8_t> bytes(kPageHeaderBytes +
                               static_cast<size_t>(frame.payload_bytes));
    PageHeader header;
    size_t cursor = 0;
    // Content verification happens here, where the bytes are used: the
    // structural scan trusted nothing but framing. The journal.replay
    // fault site models a record rotting between scan and replay (fail)
    // or the process dying mid-replay (crash).
    if (FaultHit(fault_sites::kJournalReplay) ||
        !ReadExact(fd_, frame.offset, bytes.size(), bytes.data()).ok() ||
        !ParsePageHeader(bytes, &cursor, &header) ||
        header.type != frame.type || header.job_id != frame.job_id ||
        header.payload_bytes != frame.payload_bytes ||
        PageChecksum(bytes.data() + kPageHeaderBytes,
                     static_cast<size_t>(frame.payload_bytes)) !=
            header.checksum) {
      // A rotted record reads as absent; later records are still framed
      // independently, so the walk continues.
      ++corrupt_pages_;
      continue;
    }
    const std::span<const uint8_t> payload =
        std::span<const uint8_t>(bytes).subspan(kPageHeaderBytes);
    switch (frame.type) {
      case kAdmittedRecord: {
        Result<JournalAdmittedRecord> admitted = ParseAdmitted(payload);
        if (!admitted.ok() || admitted->job_id != frame.job_id) {
          ++corrupt_pages_;
          break;
        }
        if (by_job.count(admitted->job_id) != 0) break;  // first wins
        by_job.emplace(admitted->job_id, out.size());
        JournalReplayJob job;
        job.admitted = std::move(*admitted);
        out.push_back(std::move(job));
        break;
      }
      case kStartedRecord: {
        uint64_t job_id = 0;
        size_t payload_cursor = 0;
        if (!ReadU64(payload, &payload_cursor, &job_id) ||
            payload_cursor != payload.size() || job_id != frame.job_id) {
          ++corrupt_pages_;
          break;
        }
        const auto it = by_job.find(job_id);
        if (it != by_job.end()) out[it->second].started = true;
        break;
      }
      default: {
        Result<JournalDoneRecord> done = ParseDone(payload);
        if (!done.ok() || done->job_id != frame.job_id) {
          ++corrupt_pages_;
          break;
        }
        const auto it = by_job.find(done->job_id);
        // Exactly-once: the first Done record per job is authoritative; a
        // duplicate (possible if a crash landed between FinishLocked and
        // the ack during a previous recovery) is ignored.
        if (it != by_job.end() && !out[it->second].done) {
          out[it->second].done = true;
          out[it->second].done_record = std::move(*done);
        }
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalReplayJob& a, const JournalReplayJob& b) {
              return a.admitted.admission_index != b.admitted.admission_index
                         ? a.admitted.admission_index <
                               b.admitted.admission_index
                         : a.admitted.job_id < b.admitted.job_id;
            });
  return out;
}

Status JobJournal::TruncateUnreliableTail() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return Status::IoError("job journal is closed");
  if (!tail_unreliable_) return Status::OK();
  ScopedFileLock file_lock(fd_, LOCK_EX);
  return TruncateTailLocked();
}

Status JobJournal::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return Status::IoError("job journal is closed");
  if (!dirty_) return Status::OK();
  return SyncLocked();
}

// ---- introspection ---------------------------------------------------------

JobJournalStats JobJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JobJournalStats stats;
  stats.admitted_records = admitted_records_;
  stats.started_records = started_records_;
  stats.done_records = done_records_;
  stats.appended_records = appended_records_;
  stats.fsyncs = fsyncs_;
  stats.corrupt_pages = corrupt_pages_;
  stats.truncations = truncations_;
  stats.truncated_tail_bytes = truncated_tail_bytes_;
  stats.io_retries = io_retries_;
  if (fd_ >= 0) {
    Result<uint64_t> size = FileSize(fd_);
    if (size.ok()) stats.file_bytes = *size;
  }
  return stats;
}

std::vector<JournalRecordInfo> JobJournal::ListRecords() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JournalRecordInfo> out;
  out.reserve(frames_.size());
  for (const FrameInfo& frame : frames_) {
    JournalRecordInfo info;
    info.type = frame.type;
    info.job_id = frame.job_id;
    info.offset = frame.offset;
    info.payload_bytes = frame.payload_bytes;
    out.push_back(info);
  }
  return out;
}

void JobJournal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    flusher_cv_.wait(lock, [this] { return shutdown_ || dirty_; });
    if (shutdown_) return;  // the destructor issues the final flush
    // Bounded batching window: absorb appends for up to flush_interval_ms,
    // then sync them in one fsync. Shutdown cuts the window short.
    flusher_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.flush_interval_ms),
        [this] { return shutdown_; });
    if (shutdown_) return;
    if (dirty_ && fd_ >= 0) {
      // A failed group-commit fsync is not silent: Flush() surfaces it on
      // demand, and kAlways exists for callers that need per-append
      // guarantees.
      (void)SyncLocked();
    }
  }
}

Result<JournalFsckReport> JobJournal::Fsck(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const std::string reason = std::strerror(errno);
    if (errno == ENOENT) {
      return Status::NotFound("job journal " + path + ": " + reason);
    }
    return Status::IoError("cannot open job journal " + path + ": " + reason);
  }
  JournalFsckReport report;
  {
    ScopedFileLock file_lock(fd, LOCK_SH);
    Result<uint64_t> size = FileSize(fd);
    if (!size.ok()) {
      ::close(fd);
      return size.status();
    }
    report.file_bytes = *size;
    std::vector<uint8_t> bytes(static_cast<size_t>(*size));
    Status read = ReadExact(fd, 0, bytes.size(), bytes.data());
    ::close(fd);
    if (!read.ok()) return read;

    report.superblock_ok = ValidSuperblock(bytes, &report.format_version);
    if (!report.superblock_ok) {
      report.corrupt_pages = bytes.empty() ? 0 : 1;
      report.unreliable_tail_bytes = bytes.size();
      return report;
    }
    size_t cursor = kSuperblockBytes;
    while (cursor < bytes.size()) {
      PageHeader header;
      const size_t record_offset = cursor;
      if (!ParsePageHeader(bytes, &cursor, &header) ||
          header.payload_bytes > bytes.size() - cursor ||
          PageChecksum(bytes.data() + cursor,
                       static_cast<size_t>(header.payload_bytes)) !=
              header.checksum) {
        ++report.corrupt_pages;
        report.unreliable_tail_bytes = bytes.size() - record_offset;
        break;
      }
      cursor += static_cast<size_t>(header.payload_bytes);
      ++report.valid_records;
    }
  }
  return report;
}

}  // namespace dcs
