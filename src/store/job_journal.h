// JobJournal — the crash-consistent write-ahead log of MiningService jobs.
//
// The artifact store (store/artifact_store.h) makes *derived* state durable;
// this file makes *accepted work* durable. A MiningService configured with
// MiningServiceOptions::journal_path appends an `Admitted` record — tenant
// id, admission index, priority, deadline and the full serialized
// MiningRequest — before Submit returns success, a `Started` record when an
// executor dispatches the job, and a `Done` record — terminal state, status
// code/message, a content fingerprint and (for kDone) the serialized
// response — when it finishes. A process killed mid-storm therefore leaves a
// journal from which a restarted service recovers every acked job: Done jobs
// are re-exposed through Poll/Wait without re-running (exactly-once),
// incomplete jobs are resubmitted in their original admission order.
//
// On-disk format: the PR 6 page format, under its own magic. A fixed
// 32-byte superblock (magic "DCSJRNL1", format version, endianness tag, its
// own checksum) followed by an append-only log of record frames, each a
// 32-byte page header (magic, record type, job id as the key, payload size,
// util/checksum.h payload checksum) plus the payload. The file is *never*
// trusted: Open walks the frame chain structurally and stops at the first
// broken frame; Replay re-verifies every payload checksum and parses every
// payload defensively, so torn tails and corrupt frames read as absent, and
// the next append truncates the unreliable tail away. Cross-process
// exclusion uses the same advisory flock discipline as the store.
//
// Durability: JournalDurability::kAlways fsyncs inside every append — an
// acked Submit survives power loss. kGroupCommit marks the file dirty and
// lets a background flusher fsync within a bounded interval — an acked
// Submit survives a process crash (the write() landed in the page cache)
// and loses at most the configured window to power failure. Both modes pass
// the crash harness (tests/crash), which kills the process *at* the append
// and fsync sites.
//
// Fault sites: journal.append (an append's write fails or the process dies
// mid-append), journal.fsync (a durability fsync fails or dies), and
// journal.replay (a record is dropped as corrupt during Replay, or the
// process dies mid-replay) — see util/fault_injection.h.
//
// Thread safety: all methods are safe from any thread (one internal mutex
// over the file descriptor and counters).

#ifndef DCS_STORE_JOB_JOURNAL_H_
#define DCS_STORE_JOB_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/mining.h"
#include "util/status.h"

namespace dcs {

/// When an append becomes durable. See the file comment.
enum class JournalDurability : uint8_t {
  kAlways,       ///< fsync inside every append
  kGroupCommit,  ///< background flusher fsyncs within flush_interval_ms
};

/// Journal-level tuning.
struct JobJournalOptions {
  /// Create the file (with a fresh superblock) when absent. When false,
  /// opening a missing file fails with NotFound.
  bool create_if_missing = true;
  /// See JournalDurability. Group commit is the service default: an acked
  /// job survives a crash of this process either way, and the bounded
  /// flusher keeps the fsync cost off the Submit path.
  JournalDurability durability = JournalDurability::kGroupCommit;
  /// Upper bound on how long a group-commit append stays un-fsynced.
  double flush_interval_ms = 5.0;
  /// Transient-I/O retry budget per append, as in ArtifactStoreOptions.
  uint32_t max_io_retries = 3;
  /// Deterministic exponential backoff base between retries (ms).
  double retry_backoff_ms = 0.5;
};

/// Journal-lifetime counters (since Open).
struct JobJournalStats {
  /// Valid records the current file holds, by type (updated by the opening
  /// scan and every append through this handle).
  uint64_t admitted_records = 0;
  uint64_t started_records = 0;
  uint64_t done_records = 0;
  /// Records appended through this handle.
  uint64_t appended_records = 0;
  /// Durability fsyncs issued (per-append under kAlways, flusher passes
  /// under kGroupCommit).
  uint64_t fsyncs = 0;
  /// Frames rejected — bad magic, truncated frame, checksum mismatch, or an
  /// unparseable payload dropped by Replay.
  uint64_t corrupt_pages = 0;
  /// Unreliable-tail truncation events, and the bytes they discarded.
  uint64_t truncations = 0;
  uint64_t truncated_tail_bytes = 0;
  /// Transient I/O attempts that were retried.
  uint64_t io_retries = 0;
  /// Current file size in bytes.
  uint64_t file_bytes = 0;
};

/// One structurally valid record frame, for `dcs_store journal ls` and
/// tests.
struct JournalRecordInfo {
  uint32_t type = 0;  ///< 1 = admitted, 2 = started, 3 = done
  uint64_t job_id = 0;
  uint64_t offset = 0;
  uint64_t payload_bytes = 0;
};

/// Offline integrity report, for `dcs_store journal fsck/stat`.
struct JournalFsckReport {
  bool superblock_ok = false;
  uint32_t format_version = 0;
  uint64_t valid_records = 0;
  uint64_t corrupt_pages = 0;
  /// Bytes past the last valid record (the tail a writer would truncate).
  uint64_t unreliable_tail_bytes = 0;
  uint64_t file_bytes = 0;
};

/// The terminal state a Done record carries. Mirrors the terminal half of
/// JobState (api/mining_service.h) without depending on it — the journal
/// sits below the service in the layering.
enum class JournalTerminalState : uint8_t {
  kDone = 0,
  kFailed = 1,
  kCancelled = 2,
};

/// Payload of an Admitted record: everything the service needs to re-run
/// the job after a restart. The request is serialized field-for-field with
/// exact IEEE-754 bit patterns (ga_solver.cancel is a pointer and is never
/// serialized — recovery re-owns cancellation).
struct JournalAdmittedRecord {
  uint64_t job_id = 0;
  uint32_t tenant = 0;
  /// Service-wide admission sequence number; replay resubmits incomplete
  /// jobs in this order per tenant.
  uint64_t admission_index = 0;
  MiningRequest request;
};

/// Payload of a Done record. For kDone the serialized response content
/// (subgraphs with exact double bits; telemetry is process state, never
/// journaled) rides along with its checksum fingerprint, so a recovered
/// response is bit-identical to the one the crashed process mined.
struct JournalDoneRecord {
  uint64_t job_id = 0;
  JournalTerminalState state = JournalTerminalState::kDone;
  /// StatusCode of the failure as its integer value; 0 (kOk) for kDone.
  uint32_t status_code = 0;
  std::string status_message;
  /// PageChecksum of the serialized response content; 0 when no response.
  uint64_t response_fingerprint = 0;
  bool has_response = false;
  MiningResponse response;
};

/// One job folded out of the log by Replay: its admission, whether a
/// Started record exists, and its Done record when it reached a terminal
/// state before the crash.
struct JournalReplayJob {
  JournalAdmittedRecord admitted;
  bool started = false;
  bool done = false;
  JournalDoneRecord done_record;
};

/// \brief Crash-consistent write-ahead log of MiningService jobs. See the
/// file comment for the format, trust and durability contract.
class JobJournal {
 public:
  /// Current on-disk format version; a file with a newer version is treated
  /// as unreadable (reset on the next append), never half-parsed.
  static constexpr uint32_t kFormatVersion = 1;

  /// Record type tags, as stored in the page header.
  static constexpr uint32_t kAdmittedRecord = 1;
  static constexpr uint32_t kStartedRecord = 2;
  static constexpr uint32_t kDoneRecord = 3;

  /// \brief Opens (or creates) the journal at `path`, validates the
  /// superblock and walks the frame chain structurally. A bad superblock
  /// marks the whole file untrusted — it opens empty and the first append
  /// rewrites it. I/O errors fail the open.
  static Result<std::shared_ptr<JobJournal>> Open(std::string path,
                                                  JobJournalOptions options = {});

  /// Final group-commit flush, then closes the file.
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// \brief Appends one record; on return under kAlways the record is
  /// fsynced, under kGroupCommit it is written and scheduled for the
  /// flusher. Admitted failures are meant to fail the Submit that issued
  /// them — durable admission means "acked implies journaled".
  Status AppendAdmitted(const JournalAdmittedRecord& record);
  Status AppendStarted(uint64_t job_id);
  Status AppendDone(const JournalDoneRecord& record);

  /// \brief Folds the log into one entry per admitted job, ordered by
  /// admission index. Every payload checksum is re-verified and every
  /// payload parsed defensively; a frame that fails either reads as absent
  /// (counted in corrupt_pages). Started/Done records without a surviving
  /// Admitted record are dropped; the first Done record per job wins.
  Result<std::vector<JournalReplayJob>> Replay();

  /// \brief Truncates an unreliable tail immediately instead of waiting for
  /// the next append — the recovery path calls this after Replay so a
  /// crashed-mid-append journal converges back to fsck-clean even if the
  /// recovered service never appends again. No-op on a clean tail.
  Status TruncateUnreliableTail();

  /// Forces any pending group-commit fsync to disk now.
  Status Flush();

  /// Point-in-time counters.
  JobJournalStats stats() const;

  /// The structurally valid frames, offset-ascending.
  std::vector<JournalRecordInfo> ListRecords() const;

  const std::string& path() const { return path_; }

  /// \brief Offline integrity check of the file at `path` — superblock and
  /// every payload checksum, without opening a journal handle. Fails only
  /// on I/O errors; corruption is reported, not failed.
  static Result<JournalFsckReport> Fsck(const std::string& path);

  /// \brief The exact request byte image an Admitted record stores —
  /// exposed for tests and the crash/bench harnesses. DecodeRequest rejects
  /// trailing bytes, out-of-range enums and truncation; doubles round-trip
  /// bit-exactly. `ga_solver.cancel` decodes as null by construction.
  static std::string EncodeRequest(const MiningRequest& request);
  static Result<MiningRequest> DecodeRequest(std::span<const uint8_t> bytes);

  /// \brief The response *content* image a Done record stores: both subgraph
  /// rankings with exact double bits. Telemetry is deliberately excluded —
  /// it is process state, not mined content — so a recovered response
  /// carries zeroed telemetry. ResponseFingerprint is the PageChecksum of
  /// this image (the bit-identity oracle of the crash harness).
  static std::string EncodeResponseContent(const MiningResponse& response);
  static Result<MiningResponse> DecodeResponseContent(
      std::span<const uint8_t> bytes);
  static uint64_t ResponseFingerprint(const MiningResponse& response);

 private:
  struct FrameInfo {
    uint64_t offset = 0;
    uint64_t payload_bytes = 0;
    uint32_t type = 0;
    uint64_t job_id = 0;
  };

  JobJournal(std::string path, JobJournalOptions options, int fd);

  // Structural walk of the frame chain (superblock + headers, payloads
  // untouched); fills frames_ and the reliable-end watermark. Mutex held.
  void ScanLocked();
  // Appends one framed record under the exclusive file lock, truncating any
  // unreliable tail first; applies the durability policy. Mutex held.
  Status AppendLocked(uint32_t type, uint64_t job_id,
                      const std::string& payload);
  // ftruncate away an unreliable tail (mutex and exclusive flock held).
  Status TruncateTailLocked();
  // Re-creates an empty, superblock-only file. Mutex held.
  Status ResetFileLocked();
  // fsync with the journal.fsync fault site; clears dirty_. Mutex held.
  Status SyncLocked();
  // Background group-commit flusher.
  void FlusherLoop();

  const std::string path_;
  const JobJournalOptions options_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  // Structurally valid frames in file order (the journal is a log, not a
  // directory — every frame stays reachable for Replay/ListRecords).
  std::vector<FrameInfo> frames_;
  uint64_t reliable_end_ = 0;
  bool tail_unreliable_ = false;
  bool dirty_ = false;  // written but not yet fsynced (group commit)
  // Stats (mutex-guarded).
  uint64_t admitted_records_ = 0;
  uint64_t started_records_ = 0;
  uint64_t done_records_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t corrupt_pages_ = 0;
  uint64_t truncations_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
  uint64_t io_retries_ = 0;

  // Group-commit flusher.
  std::condition_variable flusher_cv_;
  bool shutdown_ = false;
  std::thread flusher_;
};

}  // namespace dcs

#endif  // DCS_STORE_JOB_JOURNAL_H_
