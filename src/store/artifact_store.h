// ArtifactStore — the disk-backed persistence layer of libdcs: a single-file,
// page-checksummed store of graphs and prepared pipelines that survives
// restarts.
//
// Every in-memory scale layer (the shared PipelineCache, the O(Δ)-patched
// artifacts) dies with the process; a service restarting under traffic pays
// a full cold rebuild storm for every graph pair. The store closes that gap
// in the single-file storage-engine style: a fixed superblock (magic, format
// version, endianness tag, its own checksum), then an append-mostly log of
// record pages, each framed by a header carrying a 64-bit checksum
// (util/checksum.h) of its payload. Two record types exist: CSR graphs
// (graph/serialize.h) keyed by Graph::ContentFingerprint, and
// PreparedPipeline contents (difference graph, GD+, smart-init bounds with
// the cached seed order) keyed by their full PipelineCacheKey.
//
// Trust model: the file is *never* trusted — no bytes reach a caller
// without verifying first. Open validates the superblock and walks the
// page-header chain structurally (O(records) I/O, payloads untouched, so
// opening a large store is cheap); the walk stops at the first broken frame
// (a torn tail, header garbage) and the next append truncates that
// unreliable tail. Content verification happens on every load, where it
// matters: the payload checksum is re-checked, the bytes are parsed
// defensively (every Graph invariant is re-established), and the content
// key is re-derived — a graph record must fingerprint to its key, a
// pipeline record must embed its exact key. Any mismatch reads as
// "absent", counted in `corrupt_pages`, and de-indexes the record and
// everything appended after it so the next write-back truncates the rot
// away: the caller silently rebuilds, the store converges back to clean,
// and a stale or corrupt file can never poison a session. (Rot inside a
// superseded record that no load ever touches is surfaced by Fsck's deep
// scan, not by sessions.) Records are append-mostly — a rewrite appends a
// fresh page and the directory points at the newest valid record per key.
//
// Concurrency: all methods are thread-safe (one internal mutex over the
// directory and file descriptor). Across processes, every file read/write
// holds a BSD advisory lock (flock: shared for reads, exclusive for
// appends), so N processes may serve one store file — appends never
// interleave and a reader never observes a half-written page that was
// appended under the lock. Asynchronous write-back (PutPipelineAsync) runs
// on an owned background thread so a mining hot path never blocks on disk;
// Flush() drains it, and the destructor drains before closing.
//
// Determinism: payloads carry exact IEEE-754 bit patterns, so an artifact
// loaded from the store is bit-identical to the one written — a
// store-warmed solve equals a cold-built one bit for bit (pinned by
// tests/store/artifact_store_test.cc and the bench_cold_start cycle).

#ifndef DCS_STORE_ARTIFACT_STORE_H_
#define DCS_STORE_ARTIFACT_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/pipeline_cache.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Store-level tuning.
struct ArtifactStoreOptions {
  /// Create the file (with a fresh superblock) when absent. When false,
  /// opening a missing file fails with NotFound.
  bool create_if_missing = true;
  /// fsync after every append. Off by default: the store is a cache of
  /// rebuildable artifacts, so losing a tail on power failure only costs a
  /// rebuild — the checksummed scan recovers the valid prefix either way.
  bool sync_writes = false;
  /// Transient-I/O retry budget: a failing pread/pwrite inside one append or
  /// payload read is retried up to this many extra times before the error
  /// surfaces (counted in stats().io_retries). 0 disables retrying.
  uint32_t max_io_retries = 3;
  /// Base of the deterministic exponential backoff between retries: attempt
  /// k sleeps retry_backoff_ms * 2^k milliseconds. No jitter on purpose —
  /// recovery timing is reproducible, which the chaos tests and
  /// bench_fault_recovery rely on.
  double retry_backoff_ms = 0.5;
};

/// Store-lifetime counters (since Open).
struct ArtifactStoreStats {
  /// Valid records currently indexed, by type.
  uint64_t graph_records = 0;
  uint64_t pipeline_records = 0;
  /// Pages rejected — bad magic, truncated frame, checksum or content-key
  /// mismatch — at scan time or on a load.
  uint64_t corrupt_pages = 0;
  /// Records appended through this handle (sync and async).
  uint64_t appended_records = 0;
  /// Loads served (LoadGraph/LoadPipeline/warm boots) and loads that found
  /// no valid record.
  uint64_t loads = 0;
  uint64_t load_misses = 0;
  /// Async write-backs that failed after exhausting the retry budget. Never
  /// silent: the most recent failure is retained (last_write_error()),
  /// returned by Flush(), and feeds the session degradation ladder.
  uint64_t write_errors = 0;
  /// Transient I/O attempts that were retried (reads and writes, including
  /// retries that ultimately failed).
  uint64_t io_retries = 0;
  /// Bytes the opening scan discarded as an unreliable tail.
  uint64_t truncated_tail_bytes = 0;
  /// Current file size in bytes.
  uint64_t file_bytes = 0;
};

/// One indexed record page, for `dcs_store ls` and tests.
struct ArtifactRecordInfo {
  uint32_t type = 0;  ///< 1 = graph, 2 = pipeline
  uint64_t key = 0;   ///< content fingerprint (graph) or key hash (pipeline)
  uint64_t offset = 0;
  uint64_t payload_bytes = 0;
};

/// Offline integrity report, for `dcs_store fsck/stat`.
struct ArtifactFsckReport {
  bool superblock_ok = false;
  uint32_t format_version = 0;
  uint64_t valid_records = 0;
  uint64_t corrupt_pages = 0;
  /// Bytes past the last valid record (the tail a writer would truncate).
  uint64_t unreliable_tail_bytes = 0;
  uint64_t file_bytes = 0;
};

/// \brief Single-file, checksummed, fingerprint-keyed store of graphs and
/// prepared pipelines. See the file comment for the trust, concurrency and
/// determinism contract.
class ArtifactStore {
 public:
  /// Current on-disk format version; a file with a newer version is treated
  /// as unreadable (rebuild-and-overwrite), never half-parsed.
  static constexpr uint32_t kFormatVersion = 1;

  /// \brief Opens (or creates) the store at `path`, validates the
  /// superblock, and indexes every valid record.
  ///
  /// A bad superblock — wrong magic, foreign endianness, future version, or
  /// a checksum mismatch — marks the whole file untrusted: the store opens
  /// empty and the first append rewrites the file from scratch. I/O errors
  /// (unreachable path, permissions) fail the open.
  static Result<std::shared_ptr<ArtifactStore>> Open(
      std::string path, ArtifactStoreOptions options = {});

  /// Drains the async write-back queue, then closes the file.
  ~ArtifactStore();

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// \brief Appends `graph` keyed by its ContentFingerprint (synchronous).
  Status PutGraph(const Graph& graph);

  /// \brief Loads the graph with `fingerprint`; NotFound when absent or
  /// when the only record is corrupt (which also counts a corrupt page).
  Result<Graph> LoadGraph(uint64_t fingerprint);

  /// True when a record page is indexed under `fingerprint` (no payload
  /// verification — a cheap existence probe to skip redundant PutGraphs).
  bool ContainsGraph(uint64_t fingerprint) const;

  /// \brief Appends `pipeline` under `key` (synchronous).
  Status PutPipeline(const PipelineCacheKey& key,
                     const PreparedPipeline& pipeline);

  /// \brief Enqueues `pipeline` for the background writer and returns
  /// immediately — the publish/republish hot path never blocks on disk.
  /// Write failures are absorbed into stats().write_errors.
  void PutPipelineAsync(const PipelineCacheKey& key,
                        std::shared_ptr<const PreparedPipeline> pipeline);

  /// \brief Loads the pipeline stored under `key`; NotFound when absent,
  /// corrupt, or when the stored record's exact key differs (hash
  /// collision).
  Result<PreparedPipeline> LoadPipeline(const PipelineCacheKey& key);

  /// \brief Hydrates every valid stored pipeline of `graph_fingerprint`
  /// into `cache` (PipelineCache::Publish) — the warm-boot path a session
  /// runs when it attaches the store. Corrupt records are skipped (and
  /// counted); returns the number hydrated.
  size_t WarmBootFingerprint(uint64_t graph_fingerprint, PipelineCache* cache);

  /// WarmBootFingerprint over every stored pipeline regardless of
  /// fingerprint (tools and multi-tenant boots). Returns the number hydrated.
  size_t WarmBootAll(PipelineCache* cache);

  /// \brief Blocks until the async write-back queue is empty and idle, then
  /// returns the most recent async write failure (OK when every write-back
  /// since Open landed) — the synchronous observation point for errors the
  /// async path would otherwise only count.
  Status Flush();

  /// The most recent async write-back failure; OK when none occurred.
  /// Non-blocking (does not drain the queue — Flush() does).
  Status last_write_error() const;

  /// Point-in-time counters.
  ArtifactStoreStats stats() const;

  /// The indexed records, offset-ascending (newest record wins per key, so
  /// a key superseded by a later append lists only once).
  std::vector<ArtifactRecordInfo> ListRecords() const;

  const std::string& path() const { return path_; }

  /// \brief Offline integrity check of the file at `path` — validates the
  /// superblock and every page checksum without opening a store handle.
  /// Fails only on I/O errors; corruption is reported, not failed.
  static Result<ArtifactFsckReport> Fsck(const std::string& path);

 private:
  struct IndexEntry {
    uint64_t offset = 0;         // of the record header
    uint64_t payload_bytes = 0;
    uint32_t type = 0;
  };
  struct PendingWrite {
    PipelineCacheKey key;
    std::shared_ptr<const PreparedPipeline> pipeline;
  };

  ArtifactStore(std::string path, ArtifactStoreOptions options, int fd);

  // Walks the page-header chain from the superblock on, building the index
  // structurally (payload checksums are left to load time); counts broken
  // frames and records where the reliable prefix ends. Mutex held.
  void ScanLocked();
  // Appends one framed record (header + payload) under the exclusive file
  // lock, truncating any unreliable tail first. Mutex held.
  Status AppendLocked(uint32_t type, uint64_t key, const std::string& payload);
  // Reads and verifies the payload of `entry` (shared file lock +
  // checksum); a failure counts a corrupt page and de-indexes the record
  // and everything after it so the next append truncates the rot. Mutex
  // held.
  Status ReadPayloadLocked(uint64_t expected_key, const IndexEntry& entry,
                           std::vector<uint8_t>* payload);
  // Re-creates an empty, superblock-only file. Mutex held.
  Status ResetFileLocked();
  // Background thread: drains pending_writes_ through AppendLocked.
  void WriterLoop();

  const std::string path_;
  const ArtifactStoreOptions options_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  // Newest valid record per (type, key); key uses the record header key.
  std::unordered_map<uint64_t, IndexEntry> graphs_;
  std::unordered_map<uint64_t, IndexEntry> pipelines_;
  // First byte past the last record this handle knows to be valid; appends
  // truncate the file here when the opening scan found a corrupt tail.
  uint64_t reliable_end_ = 0;
  bool tail_unreliable_ = false;
  // Stats (mutex-guarded).
  uint64_t corrupt_pages_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t loads_ = 0;
  uint64_t load_misses_ = 0;
  uint64_t write_errors_ = 0;
  uint64_t io_retries_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
  // Most recent async write-back failure (mutex_-guarded, like the stats).
  Status last_write_error_;

  // Async writer.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable queue_idle_cv_;
  std::deque<PendingWrite> pending_writes_;
  bool writer_busy_ = false;
  bool shutdown_ = false;
  std::thread writer_;
};

}  // namespace dcs

#endif  // DCS_STORE_ARTIFACT_STORE_H_
