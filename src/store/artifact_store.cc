#include "store/artifact_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "graph/serialize.h"
#include "util/checksum.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace dcs {

namespace {

// ---- on-disk framing -------------------------------------------------------

// "DCSSTOR1" as a little-endian u64.
constexpr uint64_t kSuperMagic = 0x31524F5453534344ull;
// "PAGE" as a little-endian u32.
constexpr uint32_t kPageMagic = 0x45474150u;
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr size_t kSuperblockBytes = 32;
constexpr size_t kPageHeaderBytes = 32;

constexpr uint32_t kGraphRecord = 1;
constexpr uint32_t kPipelineRecord = 2;

// Superblock layout: magic u64 | version u32 | endian u32 | checksum u64 of
// the preceding 16 bytes | reserved u64.
// Page header layout: magic u32 | type u32 | key u64 | payload_bytes u64 |
// payload checksum u64.

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(std::span<const uint8_t> bytes, size_t* cursor, uint32_t* v) {
  if (bytes.size() - *cursor < 4) return false;
  std::memcpy(v, bytes.data() + *cursor, 4);
  *cursor += 4;
  return true;
}

bool ReadU64(std::span<const uint8_t> bytes, size_t* cursor, uint64_t* v) {
  if (bytes.size() - *cursor < 8) return false;
  std::memcpy(v, bytes.data() + *cursor, 8);
  *cursor += 8;
  return true;
}

std::string SerializeSuperblock() {
  std::string out;
  out.reserve(kSuperblockBytes);
  AppendU64(kSuperMagic, &out);
  AppendU32(ArtifactStore::kFormatVersion, &out);
  AppendU32(kEndianTag, &out);
  AppendU64(PageChecksum(out.data(), out.size()), &out);
  AppendU64(0, &out);  // reserved
  DCS_CHECK(out.size() == kSuperblockBytes);
  return out;
}

// Validates a superblock image; reports the version it claims (0 when the
// magic/endianness/checksum already disqualify it).
bool ValidSuperblock(std::span<const uint8_t> bytes, uint32_t* version) {
  *version = 0;
  if (bytes.size() < kSuperblockBytes) return false;
  size_t cursor = 0;
  uint64_t magic = 0, checksum = 0;
  uint32_t file_version = 0, endian = 0;
  ReadU64(bytes, &cursor, &magic);
  ReadU32(bytes, &cursor, &file_version);
  ReadU32(bytes, &cursor, &endian);
  ReadU64(bytes, &cursor, &checksum);
  if (magic != kSuperMagic || endian != kEndianTag ||
      checksum != PageChecksum(bytes.data(), 16)) {
    return false;
  }
  *version = file_version;
  // A future format version is unreadable by construction: treat the whole
  // file as untrusted rather than guessing at its layout.
  return file_version == ArtifactStore::kFormatVersion;
}

std::string SerializePageHeader(uint32_t type, uint64_t key,
                                const std::string& payload) {
  std::string out;
  out.reserve(kPageHeaderBytes);
  AppendU32(kPageMagic, &out);
  AppendU32(type, &out);
  AppendU64(key, &out);
  AppendU64(payload.size(), &out);
  AppendU64(PageChecksum(payload.data(), payload.size()), &out);
  DCS_CHECK(out.size() == kPageHeaderBytes);
  return out;
}

struct PageHeader {
  uint32_t type = 0;
  uint64_t key = 0;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
};

bool ParsePageHeader(std::span<const uint8_t> bytes, size_t* cursor,
                     PageHeader* header) {
  uint32_t magic = 0;
  return ReadU32(bytes, cursor, &magic) && magic == kPageMagic &&
         ReadU32(bytes, cursor, &header->type) &&
         (header->type == kGraphRecord || header->type == kPipelineRecord) &&
         ReadU64(bytes, cursor, &header->key) &&
         ReadU64(bytes, cursor, &header->payload_bytes) &&
         ReadU64(bytes, cursor, &header->checksum);
}

// ---- pipeline payloads -----------------------------------------------------

void AppendDoubleBits(double v, std::string* out) {
  AppendU64(std::bit_cast<uint64_t>(v), out);
}

bool ReadDoubleBits(std::span<const uint8_t> bytes, size_t* cursor,
                    double* v) {
  uint64_t b = 0;
  if (!ReadU64(bytes, cursor, &b)) return false;
  *v = std::bit_cast<double>(b);
  return true;
}

std::string SerializePipeline(const PipelineCacheKey& key,
                              const PreparedPipeline& pipeline) {
  std::string out;
  AppendU64(key.graph_fingerprint, &out);
  AppendDoubleBits(key.alpha, &out);
  const uint8_t flags[8] = {
      static_cast<uint8_t>(key.flip ? 1 : 0),
      static_cast<uint8_t>(key.discretize ? 1 : 0),
      static_cast<uint8_t>(key.clamp_weights_above ? 1 : 0),
      static_cast<uint8_t>(pipeline.has_ga_artifacts ? 1 : 0),
      static_cast<uint8_t>(pipeline.validated_nonnegative ? 1 : 0),
      0, 0, 0};
  out.append(reinterpret_cast<const char*>(flags), sizeof(flags));
  if (key.discretize) {
    AppendDoubleBits(key.discretize->strong_pos, &out);
    AppendDoubleBits(key.discretize->weak_pos, &out);
    AppendDoubleBits(key.discretize->strong_neg, &out);
    AppendDoubleBits(key.discretize->level_two, &out);
    AppendDoubleBits(key.discretize->level_one, &out);
  }
  if (key.clamp_weights_above) {
    AppendDoubleBits(*key.clamp_weights_above, &out);
  }
  AppendGraphBytes(pipeline.difference, &out);
  if (pipeline.has_ga_artifacts) {
    AppendGraphBytes(pipeline.positive_part, &out);
    const SmartInitBounds& b = pipeline.smart_bounds;
    AppendU32(static_cast<uint32_t>(b.w.size()), &out);
    for (const double v : b.w) AppendDoubleBits(v, &out);
    for (const uint32_t v : b.tau) AppendU32(v, &out);
    for (const double v : b.mu) AppendDoubleBits(v, &out);
    for (const double v : b.max_incident) AppendDoubleBits(v, &out);
    for (const VertexId v : b.order) AppendU32(v, &out);
  }
  return out;
}

Status PipelineTruncated() {
  return Status::InvalidArgument("pipeline payload truncated");
}

Result<std::pair<PipelineCacheKey, PreparedPipeline>> ParsePipeline(
    std::span<const uint8_t> bytes) {
  size_t cursor = 0;
  PipelineCacheKey key;
  if (!ReadU64(bytes, &cursor, &key.graph_fingerprint) ||
      !ReadDoubleBits(bytes, &cursor, &key.alpha)) {
    return PipelineTruncated();
  }
  if (bytes.size() - cursor < 8) return PipelineTruncated();
  const uint8_t* flags = bytes.data() + cursor;
  cursor += 8;
  for (size_t i = 0; i < 8; ++i) {
    if (flags[i] > 1 || (i >= 5 && flags[i] != 0)) {
      return Status::InvalidArgument("pipeline payload flags invalid");
    }
  }
  key.flip = flags[0] != 0;
  PreparedPipeline pipeline;
  if (flags[1] != 0) {
    DiscretizeSpec spec;
    if (!ReadDoubleBits(bytes, &cursor, &spec.strong_pos) ||
        !ReadDoubleBits(bytes, &cursor, &spec.weak_pos) ||
        !ReadDoubleBits(bytes, &cursor, &spec.strong_neg) ||
        !ReadDoubleBits(bytes, &cursor, &spec.level_two) ||
        !ReadDoubleBits(bytes, &cursor, &spec.level_one)) {
      return PipelineTruncated();
    }
    key.discretize = spec;
  }
  if (flags[2] != 0) {
    double clamp = 0.0;
    if (!ReadDoubleBits(bytes, &cursor, &clamp)) return PipelineTruncated();
    key.clamp_weights_above = clamp;
  }
  DCS_ASSIGN_OR_RETURN(pipeline.difference, ParseGraphBytes(bytes, &cursor));
  if (flags[3] != 0) {
    pipeline.has_ga_artifacts = true;
    DCS_ASSIGN_OR_RETURN(pipeline.positive_part,
                         ParseGraphBytes(bytes, &cursor));
    if (pipeline.positive_part.NumVertices() !=
        pipeline.difference.NumVertices()) {
      return Status::InvalidArgument("pipeline payload GD+ size mismatch");
    }
    uint32_t n = 0;
    if (!ReadU32(bytes, &cursor, &n)) return PipelineTruncated();
    if (n != pipeline.difference.NumVertices()) {
      return Status::InvalidArgument("pipeline payload bounds size mismatch");
    }
    SmartInitBounds& b = pipeline.smart_bounds;
    b.w.resize(n);
    b.tau.resize(n);
    b.mu.resize(n);
    b.max_incident.resize(n);
    b.order.resize(n);
    for (double& v : b.w) {
      if (!ReadDoubleBits(bytes, &cursor, &v)) return PipelineTruncated();
    }
    for (uint32_t& v : b.tau) {
      if (!ReadU32(bytes, &cursor, &v)) return PipelineTruncated();
    }
    for (double& v : b.mu) {
      if (!ReadDoubleBits(bytes, &cursor, &v)) return PipelineTruncated();
    }
    for (double& v : b.max_incident) {
      if (!ReadDoubleBits(bytes, &cursor, &v)) return PipelineTruncated();
    }
    std::vector<bool> seen(n, false);
    for (VertexId& v : b.order) {
      if (!ReadU32(bytes, &cursor, &v)) return PipelineTruncated();
      if (v >= n || seen[v]) {
        return Status::InvalidArgument(
            "pipeline payload seed order is not a permutation");
      }
      seen[v] = true;
    }
  }
  pipeline.validated_nonnegative = flags[4] != 0;
  if (cursor != bytes.size()) {
    return Status::InvalidArgument("pipeline payload has trailing bytes");
  }
  return std::make_pair(std::move(key), std::move(pipeline));
}

// ---- advisory file locking -------------------------------------------------

// flock() taken for the duration of one read or append. Advisory: every
// store handle (in this or any other process) takes it around file I/O, so
// appends never interleave and reads never observe a torn append. EINTR is
// retried; other errors degrade to lockless I/O (single-process use still
// correct via the handle mutex).
class ScopedFileLock {
 public:
  ScopedFileLock(int fd, int op) : fd_(fd) {
    // The store.flock fault site models a failing flock() — the lock
    // degrades to lockless I/O, exactly the real-error path below.
    if (FaultHit(fault_sites::kStoreFlock)) {
      fd_ = -1;
      return;
    }
    while (flock(fd_, op) != 0 && errno == EINTR) {
    }
  }
  ~ScopedFileLock() {
    if (fd_ < 0) return;
    while (flock(fd_, LOCK_UN) != 0 && errno == EINTR) {
    }
  }
  ScopedFileLock(const ScopedFileLock&) = delete;
  ScopedFileLock& operator=(const ScopedFileLock&) = delete;

 private:
  int fd_;
};

Result<uint64_t> FileSize(int fd) {
  struct stat st;
  if (fstat(fd, &st) != 0) {
    return Status::IoError(std::string("fstat failed: ") +
                           std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status ReadExact(int fd, uint64_t offset, size_t size, uint8_t* out) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = pread(fd, out + done, size - done,
                            static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IoError("unexpected end of store file");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteExact(int fd, uint64_t offset, const std::string& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = pwrite(fd, bytes.data() + done, bytes.size() - done,
                             static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

// ---- open / scan -----------------------------------------------------------

ArtifactStore::ArtifactStore(std::string path, ArtifactStoreOptions options,
                             int fd)
    : path_(std::move(path)), options_(options), fd_(fd) {
  writer_ = std::thread(&ArtifactStore::WriterLoop, this);
}

Result<std::shared_ptr<ArtifactStore>> ArtifactStore::Open(
    std::string path, ArtifactStoreOptions options) {
  const int flags = options.create_if_missing ? (O_RDWR | O_CREAT) : O_RDWR;
  const int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
  if (fd < 0) {
    const std::string reason = std::strerror(errno);
    if (errno == ENOENT) {
      return Status::NotFound("artifact store " + path + ": " + reason);
    }
    return Status::IoError("cannot open artifact store " + path + ": " +
                           reason);
  }
  auto store = std::shared_ptr<ArtifactStore>(
      new ArtifactStore(std::move(path), options, fd));
  {
    std::lock_guard<std::mutex> lock(store->mutex_);
    store->ScanLocked();
  }
  return store;
}

ArtifactStore::~ArtifactStore() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ArtifactStore::ScanLocked() {
  graphs_.clear();
  pipelines_.clear();
  ScopedFileLock file_lock(fd_, LOCK_SH);
  Result<uint64_t> size = FileSize(fd_);
  if (!size.ok()) {
    reliable_end_ = 0;
    tail_unreliable_ = true;
    return;
  }

  if (*size == 0) {
    // Brand-new file: trust nothing yet; the first append writes the
    // superblock (ResetFileLocked), and until then the store is just empty.
    reliable_end_ = 0;
    tail_unreliable_ = true;
    return;
  }

  // Structural walk only — superblock plus the page-header chain, O(records)
  // I/O regardless of payload volume, so opening a large store is cheap.
  // Payload checksums are NOT verified here: every load re-verifies before
  // its bytes are used (ReadPayloadLocked), which is where "never trust the
  // file" is actually enforced, and a record that rots after this scan
  // would dodge an open-time checksum anyway.
  uint8_t superblock[kSuperblockBytes];
  uint32_t version = 0;
  if (!ReadExact(fd_, 0, kSuperblockBytes, superblock).ok() ||
      !ValidSuperblock(std::span<const uint8_t>(superblock, kSuperblockBytes),
                       &version)) {
    // Wrong magic, foreign endianness, bad checksum or a future format
    // version: the whole file is untrusted. Open empty; the first append
    // rewrites from scratch.
    reliable_end_ = 0;
    tail_unreliable_ = true;
    ++corrupt_pages_;
    return;
  }

  uint64_t cursor = kSuperblockBytes;
  reliable_end_ = cursor;
  tail_unreliable_ = false;
  while (cursor < *size) {
    const uint64_t record_offset = cursor;
    uint8_t header_bytes[kPageHeaderBytes];
    PageHeader header;
    size_t header_cursor = 0;
    if (*size - cursor < kPageHeaderBytes ||
        !ReadExact(fd_, cursor, kPageHeaderBytes, header_bytes).ok() ||
        !ParsePageHeader(
            std::span<const uint8_t>(header_bytes, kPageHeaderBytes),
            &header_cursor, &header) ||
        header.payload_bytes > *size - cursor - kPageHeaderBytes) {
      // Broken chain: a torn append or header garbage. Everything from here
      // on is unreachable — stop indexing; the next append truncates.
      ++corrupt_pages_;
      tail_unreliable_ = true;
      break;
    }
    cursor += kPageHeaderBytes + header.payload_bytes;
    IndexEntry entry;
    entry.offset = record_offset;
    entry.payload_bytes = header.payload_bytes;
    entry.type = header.type;
    // Newest record per key wins (append-mostly overwrite).
    (header.type == kGraphRecord ? graphs_ : pipelines_)[header.key] = entry;
    reliable_end_ = cursor;
  }
}

// ---- append path -----------------------------------------------------------

Status ArtifactStore::ResetFileLocked() {
  if (ftruncate(fd_, 0) != 0) {
    return Status::IoError(std::string("ftruncate failed: ") +
                           std::strerror(errno));
  }
  DCS_RETURN_NOT_OK(WriteExact(fd_, 0, SerializeSuperblock()));
  graphs_.clear();
  pipelines_.clear();
  reliable_end_ = kSuperblockBytes;
  tail_unreliable_ = false;
  return Status::OK();
}

Status ArtifactStore::AppendLocked(uint32_t type, uint64_t key,
                                   const std::string& payload) {
  if (fd_ < 0) return Status::IoError("artifact store is closed");
  ScopedFileLock file_lock(fd_, LOCK_EX);
  if (tail_unreliable_) {
    // Untrusted superblock (reliable_end_ == 0) rebuilds the whole file;
    // a corrupt tail is truncated back to the last valid record.
    if (reliable_end_ < kSuperblockBytes) {
      DCS_RETURN_NOT_OK(ResetFileLocked());
    } else {
      Result<uint64_t> size = FileSize(fd_);
      if (size.ok() && *size > reliable_end_) {
        truncated_tail_bytes_ += *size - reliable_end_;
      }
      if (ftruncate(fd_, static_cast<off_t>(reliable_end_)) != 0) {
        return Status::IoError(std::string("ftruncate failed: ") +
                               std::strerror(errno));
      }
      tail_unreliable_ = false;
    }
  }
  // Another process may have appended since our scan; never overwrite its
  // records — append at the true end of file.
  DCS_ASSIGN_OR_RETURN(uint64_t end, FileSize(fd_));
  const uint64_t write_offset = std::max(end, reliable_end_);
  std::string frame = SerializePageHeader(type, key, payload);
  frame += payload;
  // Transient write failures — and the store.append fault site — are
  // retried with deterministic exponential backoff before surfacing. The
  // pwrite targets fixed offsets, so a retry over a partial write is
  // idempotent.
  Status wrote;
  for (uint32_t attempt = 0;; ++attempt) {
    wrote = FaultHit(fault_sites::kStoreAppend)
                ? FaultInjection::InjectedError(fault_sites::kStoreAppend)
                : WriteExact(fd_, write_offset, frame);
    if (wrote.ok() || !wrote.IsIoError() ||
        attempt >= options_.max_io_retries) {
      break;
    }
    ++io_retries_;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.retry_backoff_ms * static_cast<double>(1u << attempt)));
  }
  DCS_RETURN_NOT_OK(wrote);
  if (options_.sync_writes && fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  IndexEntry entry;
  entry.offset = write_offset;
  entry.payload_bytes = payload.size();
  entry.type = type;
  (type == kGraphRecord ? graphs_ : pipelines_)[key] = entry;
  reliable_end_ = write_offset + frame.size();
  ++appended_records_;
  return Status::OK();
}

Status ArtifactStore::ReadPayloadLocked(uint64_t expected_key,
                                        const IndexEntry& entry,
                                        std::vector<uint8_t>* payload) {
  ScopedFileLock file_lock(fd_, LOCK_SH);
  std::vector<uint8_t> frame(kPageHeaderBytes +
                             static_cast<size_t>(entry.payload_bytes));
  // Same bounded-retry policy as AppendLocked, covering real transient
  // pread failures and the store.read fault site. Only I/O errors retry;
  // a checksum mismatch is content rot, not transience.
  Status read;
  for (uint32_t attempt = 0;; ++attempt) {
    read = FaultHit(fault_sites::kStoreRead)
               ? FaultInjection::InjectedError(fault_sites::kStoreRead)
               : ReadExact(fd_, entry.offset, frame.size(), frame.data());
    if (read.ok() || !read.IsIoError() ||
        attempt >= options_.max_io_retries) {
      break;
    }
    ++io_retries_;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.retry_backoff_ms * static_cast<double>(1u << attempt)));
  }
  PageHeader header;
  size_t cursor = 0;
  if (!read.ok() || !ParsePageHeader(frame, &cursor, &header) ||
      header.type != entry.type || header.key != expected_key ||
      header.payload_bytes != entry.payload_bytes ||
      PageChecksum(frame.data() + kPageHeaderBytes,
                   static_cast<size_t>(entry.payload_bytes)) !=
          header.checksum) {
    // The page rotted (the open-time scan is structural only; content is
    // verified here, on first use). Drop it and every record behind it from
    // the directory and mark the tail unreliable at its offset: the caller
    // rebuilds, and the next write-back truncates the rot away so the file
    // converges back to fsck-clean.
    ++corrupt_pages_;
    // `entry` references map storage that the erase loop below may free —
    // copy the pivot offset out first.
    const uint64_t bad_offset = entry.offset;
    for (auto* directory : {&graphs_, &pipelines_}) {
      for (auto it = directory->begin(); it != directory->end();) {
        it = it->second.offset >= bad_offset ? directory->erase(it) : ++it;
      }
    }
    if (!tail_unreliable_ || bad_offset < reliable_end_) {
      reliable_end_ = std::max<uint64_t>(bad_offset, kSuperblockBytes);
      tail_unreliable_ = true;
    }
    return Status::NotFound("artifact record failed verification");
  }
  payload->assign(frame.begin() + kPageHeaderBytes, frame.end());
  return Status::OK();
}

// ---- graph records ---------------------------------------------------------

Status ArtifactStore::PutGraph(const Graph& graph) {
  std::string payload;
  payload.reserve(GraphByteSize(graph));
  AppendGraphBytes(graph, &payload);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(kGraphRecord, graph.ContentFingerprint(), payload);
}

Result<Graph> ArtifactStore::LoadGraph(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++loads_;
  const auto it = graphs_.find(fingerprint);
  if (it == graphs_.end()) {
    ++load_misses_;
    return Status::NotFound("no graph record for fingerprint");
  }
  std::vector<uint8_t> payload;
  Status read = ReadPayloadLocked(fingerprint, it->second, &payload);
  if (!read.ok()) {
    ++load_misses_;
    return read;
  }
  size_t cursor = 0;
  Result<Graph> parsed = ParseGraphBytes(payload, &cursor);
  if (!parsed.ok() || cursor != payload.size() ||
      parsed->ContentFingerprint() != fingerprint) {
    // Checksum-valid but unparseable or mis-keyed content (a stale or
    // hand-edited file): never let it poison the caller.
    ++corrupt_pages_;
    ++load_misses_;
    graphs_.erase(fingerprint);
    return Status::NotFound("graph record failed content verification");
  }
  return parsed;
}

bool ArtifactStore::ContainsGraph(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.count(fingerprint) != 0;
}

// ---- pipeline records ------------------------------------------------------

Status ArtifactStore::PutPipeline(const PipelineCacheKey& key,
                                  const PreparedPipeline& pipeline) {
  const std::string payload = SerializePipeline(key, pipeline);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(kPipelineRecord, key.Hash(), payload);
}

void ArtifactStore::PutPipelineAsync(
    const PipelineCacheKey& key,
    std::shared_ptr<const PreparedPipeline> pipeline) {
  if (pipeline == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_) return;
    pending_writes_.push_back(PendingWrite{key, std::move(pipeline)});
  }
  queue_cv_.notify_one();
}

Result<PreparedPipeline> ArtifactStore::LoadPipeline(
    const PipelineCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++loads_;
  const uint64_t hash = key.Hash();
  const auto it = pipelines_.find(hash);
  if (it == pipelines_.end()) {
    ++load_misses_;
    return Status::NotFound("no pipeline record for key");
  }
  std::vector<uint8_t> payload;
  Status read = ReadPayloadLocked(hash, it->second, &payload);
  if (!read.ok()) {
    ++load_misses_;
    return read;
  }
  Result<std::pair<PipelineCacheKey, PreparedPipeline>> parsed =
      ParsePipeline(payload);
  if (!parsed.ok()) {
    ++corrupt_pages_;
    ++load_misses_;
    pipelines_.erase(hash);
    return Status::NotFound("pipeline record failed content verification");
  }
  if (!(parsed->first == key)) {
    // A 2^-64 hash collision with a different key: the record is healthy,
    // just not ours.
    ++load_misses_;
    return Status::NotFound("pipeline record key mismatch");
  }
  return std::move(parsed->second);
}

size_t ArtifactStore::WarmBootFingerprint(uint64_t graph_fingerprint,
                                          PipelineCache* cache) {
  DCS_CHECK(cache != nullptr);
  // Snapshot the candidate hashes, then load each through the verifying
  // path without holding our mutex across Publish.
  std::vector<uint64_t> hashes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hashes.reserve(pipelines_.size());
    for (const auto& [hash, entry] : pipelines_) hashes.push_back(hash);
  }
  std::sort(hashes.begin(), hashes.end());

  size_t hydrated = 0;
  for (const uint64_t hash : hashes) {
    std::vector<uint8_t> payload;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++loads_;
      const auto it = pipelines_.find(hash);
      if (it == pipelines_.end()) {
        ++load_misses_;
        continue;
      }
      if (!ReadPayloadLocked(hash, it->second, &payload).ok()) {
        ++load_misses_;
        continue;
      }
    }
    Result<std::pair<PipelineCacheKey, PreparedPipeline>> parsed =
        ParsePipeline(payload);
    if (!parsed.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++corrupt_pages_;
      ++load_misses_;
      pipelines_.erase(hash);
      continue;
    }
    if (parsed->first.Hash() != hash) {
      // The record's embedded key must hash to its directory slot.
      std::lock_guard<std::mutex> lock(mutex_);
      ++corrupt_pages_;
      ++load_misses_;
      pipelines_.erase(hash);
      continue;
    }
    if (graph_fingerprint != 0 &&
        parsed->first.graph_fingerprint != graph_fingerprint) {
      continue;  // healthy record of another graph pair
    }
    cache->Publish(parsed->first, std::make_shared<const PreparedPipeline>(
                                      std::move(parsed->second)));
    ++hydrated;
  }
  return hydrated;
}

size_t ArtifactStore::WarmBootAll(PipelineCache* cache) {
  return WarmBootFingerprint(0, cache);
}

// ---- async writer ----------------------------------------------------------

void ArtifactStore::WriterLoop() {
  while (true) {
    PendingWrite write;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutdown_ || !pending_writes_.empty(); });
      if (pending_writes_.empty()) return;  // shutdown with a drained queue
      write = std::move(pending_writes_.front());
      pending_writes_.pop_front();
      writer_busy_ = true;
    }
    const Status status = PutPipeline(write.key, *write.pipeline);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      writer_busy_ = false;
      if (!status.ok()) {
        // A failed write-back (post-retry) is recorded, never dropped: the
        // counter and retained Status are what Flush() and the session
        // degradation ladder observe.
        std::lock_guard<std::mutex> stats_lock(mutex_);
        ++write_errors_;
        last_write_error_ = status;
      }
      if (pending_writes_.empty()) queue_idle_cv_.notify_all();
    }
  }
}

Status ArtifactStore::Flush() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_idle_cv_.wait(
        lock, [this] { return pending_writes_.empty() && !writer_busy_; });
  }
  return last_write_error();
}

Status ArtifactStore::last_write_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_write_error_;
}

// ---- introspection ---------------------------------------------------------

ArtifactStoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ArtifactStoreStats stats;
  stats.graph_records = graphs_.size();
  stats.pipeline_records = pipelines_.size();
  stats.corrupt_pages = corrupt_pages_;
  stats.appended_records = appended_records_;
  stats.loads = loads_;
  stats.load_misses = load_misses_;
  stats.write_errors = write_errors_;
  stats.io_retries = io_retries_;
  stats.truncated_tail_bytes = truncated_tail_bytes_;
  if (fd_ >= 0) {
    Result<uint64_t> size = FileSize(fd_);
    if (size.ok()) stats.file_bytes = *size;
  }
  return stats;
}

std::vector<ArtifactRecordInfo> ArtifactStore::ListRecords() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ArtifactRecordInfo> out;
  out.reserve(graphs_.size() + pipelines_.size());
  for (const auto* index : {&graphs_, &pipelines_}) {
    for (const auto& [key, entry] : *index) {
      ArtifactRecordInfo info;
      info.type = entry.type;
      info.key = key;
      info.offset = entry.offset;
      info.payload_bytes = entry.payload_bytes;
      out.push_back(info);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ArtifactRecordInfo& a, const ArtifactRecordInfo& b) {
              return a.offset < b.offset;
            });
  return out;
}

Result<ArtifactFsckReport> ArtifactStore::Fsck(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const std::string reason = std::strerror(errno);
    if (errno == ENOENT) {
      return Status::NotFound("artifact store " + path + ": " + reason);
    }
    return Status::IoError("cannot open artifact store " + path + ": " +
                           reason);
  }
  ArtifactFsckReport report;
  {
    ScopedFileLock file_lock(fd, LOCK_SH);
    Result<uint64_t> size = FileSize(fd);
    if (!size.ok()) {
      ::close(fd);
      return size.status();
    }
    report.file_bytes = *size;
    std::vector<uint8_t> bytes(static_cast<size_t>(*size));
    Status read = ReadExact(fd, 0, bytes.size(), bytes.data());
    ::close(fd);
    if (!read.ok()) return read;

    report.superblock_ok = ValidSuperblock(bytes, &report.format_version);
    if (!report.superblock_ok) {
      report.corrupt_pages = bytes.empty() ? 0 : 1;
      report.unreliable_tail_bytes = bytes.size();
      return report;
    }
    size_t cursor = kSuperblockBytes;
    while (cursor < bytes.size()) {
      PageHeader header;
      const size_t record_offset = cursor;
      if (!ParsePageHeader(bytes, &cursor, &header) ||
          header.payload_bytes > bytes.size() - cursor ||
          PageChecksum(bytes.data() + cursor,
                       static_cast<size_t>(header.payload_bytes)) !=
              header.checksum) {
        ++report.corrupt_pages;
        report.unreliable_tail_bytes = bytes.size() - record_offset;
        break;
      }
      cursor += static_cast<size_t>(header.payload_bytes);
      ++report.valid_records;
    }
  }
  return report;
}

}  // namespace dcs
