// Cooperative cancellation for long-running solves.
//
// A CancelToken is a one-way latch: any thread may call Cancel() once (or
// many times), and workers poll cancelled() at safe points — the NewSEA
// seed-shard loop checks between seed chunks, MinerSession::Solve checks
// between measure dispatches. Cancellation is cooperative and coarse by
// design: a solve either completes bit-identically to an uncancelled run or
// aborts with Status::Cancelled and no partial result, so cancelling never
// perturbs session state or determinism.

#ifndef DCS_UTIL_CANCELLATION_H_
#define DCS_UTIL_CANCELLATION_H_

#include <atomic>

namespace dcs {

/// \brief One-way cancellation latch shared between a controller and the
/// workers of one solve. Thread-safe; cheap enough to poll in inner loops.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called. Relaxed: observing the flag late only
  /// delays the abort by one chunk of work.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace dcs

#endif  // DCS_UTIL_CANCELLATION_H_
