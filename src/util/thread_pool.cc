#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/fault_injection.h"

namespace dcs {

namespace {

// The pool.dispatch fault site: an armed fault surfaces as a task exception,
// exercising the same capture-and-rethrow contract a throwing task would.
// Zero-overhead when disarmed (one relaxed load in FaultHit).
void MaybeInjectDispatchFault() {
  if (FaultHit(fault_sites::kPoolDispatch)) {
    throw std::runtime_error(
        FaultInjection::InjectedError(fault_sites::kPoolDispatch).ToString());
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DefaultConcurrency() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware != 0 ? hardware : 1;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(
        lock, [this] { return shutting_down_ || !active_groups_.empty(); });
    if (active_groups_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    RunOneIndex(active_groups_.front(), &lock);
  }
}

void ThreadPool::MaybeRetire(Group* group) {
  if (group->next < group->num_tasks) return;
  for (auto it = active_groups_.begin(); it != active_groups_.end(); ++it) {
    if (*it == group) {
      active_groups_.erase(it);
      return;
    }
  }
}

void ThreadPool::RunOneIndex(Group* group, std::unique_lock<std::mutex>* lock) {
  const size_t index = group->next++;
  MaybeRetire(group);
  lock->unlock();
  std::exception_ptr error;
  try {
    MaybeInjectDispatchFault();
    (*group->fn)(index);
  } catch (...) {
    error = std::current_exception();
  }
  lock->lock();
  if (error && !group->error) group->error = std::move(error);
  if (--group->unfinished == 0) group->done.notify_all();
}

void ThreadPool::RunTasks(size_t num_tasks,
                          const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // No workers: sequential execution with the same exception contract as
    // the pooled path — every index runs, the first exception is rethrown.
    std::exception_ptr error;
    for (size_t i = 0; i < num_tasks; ++i) {
      try {
        MaybeInjectDispatchFault();
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  Group group;
  group.fn = &fn;
  group.num_tasks = num_tasks;
  group.unfinished = num_tasks;

  std::unique_lock<std::mutex> lock(mutex_);
  active_groups_.push_back(&group);
  if (num_tasks > 1) {
    // The caller takes indices too, so at most num_tasks - 1 workers are
    // useful; notify_all keeps it simple (spurious wakeups just re-sleep).
    work_available_.notify_all();
  }
  // Participate: drain this group's own indices (other groups' tasks are
  // never run here, so an outer RunTasks can't be blocked under a nested
  // group's long tail).
  while (group.next < group.num_tasks) {
    RunOneIndex(&group, &lock);
  }
  group.done.wait(lock, [&group] { return group.unfinished == 0; });
  if (group.error) std::rethrow_exception(group.error);
}

}  // namespace dcs
