#include "util/fault_injection.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "util/hash.h"

namespace dcs {

std::atomic<bool> FaultInjection::armed_{false};

FaultInjection& FaultInjection::Global() {
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

namespace {

Status ValidateSpec(const FaultSpec& spec) {
  if (spec.site.empty()) {
    return Status::InvalidArgument("fault spec needs a site name");
  }
  if (spec.every == 0) {
    return Status::InvalidArgument("fault spec 'every' must be >= 1");
  }
  if (!std::isfinite(spec.prob) || spec.prob < 0.0 || spec.prob > 1.0) {
    return Status::InvalidArgument("fault spec 'prob' must be in [0, 1]");
  }
  if (!std::isfinite(spec.delay_ms) || spec.delay_ms < 0.0) {
    return Status::InvalidArgument("fault spec 'delay_ms' must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Status FaultInjection::Arm(FaultSpec spec) {
  DCS_RETURN_NOT_OK(ValidateSpec(spec));
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = sites_[spec.site];
  state.spec = std::move(spec);
  state.hit_count = 0;
  state.fire_count = 0;
  armed_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultInjection::ArmText(const std::string& text) {
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = std::min(text.find(';', begin), text.size());
    const std::string one = text.substr(begin, end - begin);
    if (!one.empty()) {
      DCS_ASSIGN_OR_RETURN(FaultSpec spec, Parse(one));
      DCS_RETURN_NOT_OK(Arm(std::move(spec)));
    }
    begin = end + 1;
  }
  return Status::OK();
}

namespace {

// Strict numeric field parsing, mirroring the CLI's rule: the whole value
// must be consumed.
bool ParseU64Field(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseDoubleField(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

Result<FaultSpec> FaultInjection::Parse(const std::string& text) {
  FaultSpec spec;
  const size_t colon = text.find(':');
  spec.site = text.substr(0, colon);
  if (spec.site.empty()) {
    return Status::InvalidArgument("fault spec '" + text +
                                   "' is missing its site name");
  }
  // Text specs come from CLIs and test strings, where a typo'd site name
  // would arm a hook no code ever hits — silently. Reject anything outside
  // the registry; programmatic Arm() stays permissive for custom sites.
  bool known = false;
  for (const char* site : fault_sites::kKnownSites) {
    if (spec.site == site) {
      known = true;
      break;
    }
  }
  if (!known) {
    std::string valid;
    for (const char* site : fault_sites::kKnownSites) {
      if (!valid.empty()) valid += ", ";
      valid += site;
    }
    return Status::InvalidArgument("unknown fault site '" + spec.site +
                                   "'; valid sites: " + valid);
  }
  size_t begin = colon == std::string::npos ? text.size() : colon + 1;
  while (begin < text.size()) {
    const size_t end = std::min(text.find(',', begin), text.size());
    const std::string field = text.substr(begin, end - begin);
    begin = end + 1;
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec field '" + field +
                                     "' is not key=value");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    bool ok = true;
    if (key == "every") {
      ok = ParseU64Field(value, &spec.every);
    } else if (key == "after") {
      ok = ParseU64Field(value, &spec.after);
    } else if (key == "times") {
      ok = ParseU64Field(value, &spec.times);
    } else if (key == "seed") {
      ok = ParseU64Field(value, &spec.seed);
    } else if (key == "prob") {
      ok = ParseDoubleField(value, &spec.prob);
    } else if (key == "delay_ms") {
      ok = ParseDoubleField(value, &spec.delay_ms);
    } else if (key == "fail") {
      uint64_t flag = 0;
      ok = ParseU64Field(value, &flag) && flag <= 1;
      spec.fail = flag != 0;
    } else if (key == "crash") {
      uint64_t flag = 0;
      ok = ParseU64Field(value, &flag) && flag <= 1;
      spec.crash = flag != 0;
    } else {
      return Status::InvalidArgument("unknown fault spec key '" + key + "'");
    }
    if (!ok) {
      return Status::InvalidArgument("invalid fault spec value '" + field +
                                     "'");
    }
  }
  DCS_RETURN_NOT_OK(ValidateSpec(spec));
  return spec;
}

void FaultInjection::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  total_fires_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjection::Hit(const char* site) {
  double delay_ms = 0.0;
  bool fail = false;
  bool fired = false;
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    SiteState& state = it->second;
    const FaultSpec& spec = state.spec;
    const uint64_t index = state.hit_count++;
    if (index < spec.after) return false;
    if (spec.times != 0 && state.fire_count >= spec.times) return false;
    if ((index - spec.after) % spec.every != 0) return false;
    if (spec.prob < 1.0) {
      // Per-hit deterministic coin: a splitmix64 hash of (seed, site name,
      // hit index) mapped to [0, 1). No global RNG, so reruns reproduce the
      // exact fire schedule.
      uint64_t h = MixFingerprint(spec.seed, 0x66617565ull /* "faul" */);
      for (const char* c = site; *c != '\0'; ++c) {
        h = MixFingerprint(h, static_cast<uint64_t>(*c));
      }
      h = MixFingerprint(h, index);
      const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (coin >= spec.prob) return false;
    }
    ++state.fire_count;
    ++total_fires_;
    fired = true;
    fail = spec.fail;
    crash = spec.crash;
    delay_ms = spec.delay_ms;
  }
  if (fired && delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
  }
  if (fired && crash) {
    // The kill-at-fault-site action: die *here*, mid-operation, exactly as
    // a power cut or SIGKILL would land at this point in the I/O. abort()
    // (not exit) skips every destructor and atexit hook — no graceful
    // flush, no journal Done records — which is the whole point.
    std::abort();
  }
  return fail;
}

Status FaultInjection::InjectedError(const char* site) {
  return Status::IoError(std::string("injected fault at ") + site);
}

uint64_t FaultInjection::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.hit_count : 0;
}

uint64_t FaultInjection::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.fire_count : 0;
}

uint64_t FaultInjection::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_fires_;
}

}  // namespace dcs
