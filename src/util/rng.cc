#include "util/rng.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace dcs {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ull;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DCS_CHECK(bound > 0) << "NextBounded(0)";
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DCS_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Geometric(double p) {
  DCS_CHECK(p > 0.0 && p <= 1.0) << "Geometric p=" << p;
  if (p >= 1.0) return 0;
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t Rng::Poisson(double mean) {
  DCS_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint64_t count = 0;
    while (prod > limit) {
      ++count;
      prod *= NextDouble();
    }
    return count;
  }
  double draw = Normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(draw));
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Zipf(uint64_t n, double alpha) {
  DCS_CHECK(n > 0);
  if (n == 1) return 0;
  // Rejection sampling against a piecewise envelope (standard method).
  const double b = std::pow(2.0, alpha - 1.0);
  while (true) {
    const double u = NextDouble();
    const double v = NextDouble();
    const double x = std::floor(std::pow(u, -1.0 / (alpha - 1.0 + 1e-12)));
    const double t = std::pow(1.0 + 1.0 / x, alpha - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b && x <= static_cast<double>(n)) {
      return static_cast<uint64_t>(x) - 1;
    }
  }
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  DCS_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 2 >= n) {
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::unordered_set<uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    uint32_t candidate = static_cast<uint32_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace dcs
