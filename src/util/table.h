// Fixed-width console table printer used by the benchmark harness to emit
// paper-style tables (Table II, IV, VII, ...).

#ifndef DCS_UTIL_TABLE_H_
#define DCS_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcs {

/// \brief Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  /// \param title printed above the table; may be empty.
  /// \param columns header row.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Convenience formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(int64_t v);
  static std::string Fmt(uint64_t v);
  static std::string YesNo(bool v) { return v ? "Yes" : "No"; }

  /// Renders the table to a string (markdown-ish pipes, aligned).
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcs

#endif  // DCS_UTIL_TABLE_H_
