// Min segment tree with argmin queries and point updates.
//
// This is the data structure §IV-B of the paper names for implementing the
// Greedy peel (Algorithm 1) in O((m + n) log n): it stores the *current*
// weighted degree of every still-present vertex and repeatedly extracts the
// vertex of minimum degree while supporting degree updates for the removed
// vertex's neighbors. Deleted positions are set to +infinity.

#ifndef DCS_UTIL_SEGMENT_TREE_H_
#define DCS_UTIL_SEGMENT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dcs {

/// \brief Segment tree over a fixed-size array of doubles supporting
/// point assignment / point addition and global / range argmin.
class MinSegmentTree {
 public:
  /// Index + value of a minimum element. For an empty/all-deleted tree the
  /// index is kNoIndex and the value +infinity.
  struct MinEntry {
    size_t index;
    double value;
  };

  static constexpr size_t kNoIndex = static_cast<size_t>(-1);
  static constexpr double kDeleted = std::numeric_limits<double>::infinity();

  /// Builds the tree over `values` (O(n)).
  explicit MinSegmentTree(const std::vector<double>& values);

  /// Builds the tree over `size` copies of `fill`.
  explicit MinSegmentTree(size_t size, double fill = 0.0);

  size_t size() const { return size_; }

  /// Current value at `i` (kDeleted if the position was erased).
  double Get(size_t i) const;

  /// value[i] = v. O(log n).
  void Assign(size_t i, double v);

  /// value[i] += delta. No-op on deleted positions. O(log n).
  void Add(size_t i, double delta);

  /// Marks position i as deleted (value becomes +infinity). O(log n).
  void Erase(size_t i);

  bool IsErased(size_t i) const;

  /// Global minimum; ties broken towards the smallest index.
  MinEntry Min() const;

  /// Minimum over [lo, hi); returns kNoIndex when the range is empty or
  /// fully deleted.
  MinEntry RangeMin(size_t lo, size_t hi) const;

 private:
  void Build(const std::vector<double>& values);
  void Pull(size_t node);

  size_t size_ = 0;
  size_t base_ = 1;  // number of leaves (power of two >= size_)
  // tree_[k] = min over the leaves below k; leaf i lives at base_ + i.
  std::vector<double> tree_;
  // arg_[k] = leaf index achieving tree_[k] (smallest such index).
  std::vector<size_t> arg_;
};

}  // namespace dcs

#endif  // DCS_UTIL_SEGMENT_TREE_H_
