// Deterministic, seeded fault injection for the robustness test surface.
//
// Production code marks its failure-prone boundaries with *named sites*
// (store reads/appends, the advisory file lock, pipeline builds, thread-pool
// task dispatch) by calling FaultHit("site.name") at the point where an I/O
// or dispatch error would surface. A disarmed registry makes that call one
// relaxed atomic load — no lock, no map lookup, no branch history beyond a
// never-taken jump — so shipping the hooks costs nothing (bench_fault_recovery
// pins the <1% bound). Tests and `dcs_mine --inject` arm sites with a
// FaultSpec; armed sites then fail (or stall) on a *deterministic* schedule.
//
// Determinism: the fire/no-fire decision for a site's N-th hit is a pure
// function of (spec, N) — an atomic per-site hit counter indexes the
// schedule, and the optional probabilistic coin is a splitmix64 hash of
// (seed, site, N), never a global RNG. Concurrent callers may interleave
// *which* operation draws which hit index, but the multiset of injected
// failures per site is exactly reproducible, which is what the chaos
// harness needs: storms are repeatable, and the set of surviving jobs must
// still be bit-identical to a fault-free run.
//
// Thread safety: all methods are safe from any thread. Arm/Reset are
// expected at quiescent points (test setup, main()); they take effect for
// hits that begin afterwards.
//
// The registry is process-global on purpose: the sites live in layers that
// must not know about each other (store/, api/, util/), and a test arms
// faults underneath a fully wired service without threading a handle
// through every constructor.

#ifndef DCS_UTIL_FAULT_INJECTION_H_
#define DCS_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace dcs {

/// Canonical site names, so call sites, tests and `--inject` specs agree on
/// spelling. These are the sites libdcs itself checks; kKnownSites is the
/// registry Parse validates text specs against. Custom solvers may still arm
/// their own sites programmatically — Arm() stays permissive; only the
/// text/CLI path rejects unknown names, because a typo there used to arm a
/// dead hook silently.
namespace fault_sites {
inline constexpr const char kStoreRead[] = "store.read";
inline constexpr const char kStoreAppend[] = "store.append";
inline constexpr const char kStoreFlock[] = "store.flock";
inline constexpr const char kCacheBuild[] = "cache.build";
inline constexpr const char kPoolDispatch[] = "pool.dispatch";
inline constexpr const char kJournalAppend[] = "journal.append";
inline constexpr const char kJournalFsync[] = "journal.fsync";
inline constexpr const char kJournalReplay[] = "journal.replay";

/// Every site registered above, for Parse validation and `--inject` help.
inline constexpr const char* const kKnownSites[] = {
    kStoreRead,  kStoreAppend,   kStoreFlock,  kCacheBuild,
    kPoolDispatch, kJournalAppend, kJournalFsync, kJournalReplay};
}  // namespace fault_sites

/// \brief The failure schedule of one armed site.
///
/// A hit is *eligible* once the first `after` hits passed and, with
/// `every > 1`, only every `every`-th eligible hit. An eligible hit then
/// fires iff the deterministic coin (probability `prob`, seeded by
/// `seed`/site/hit-index) comes up, and the site has fired fewer than
/// `times` times (0 = unlimited). A firing hit sleeps `delay_ms` first
/// (latency injection — the lever for mid-I/O race tests), then reports
/// failure unless `fail` is false (delay-only site). With `crash` set, a
/// firing hit abort()s the process after the delay instead of returning —
/// the deterministic kill-at-fault-site lever of the crash-recovery
/// harness (tests/crash).
struct FaultSpec {
  std::string site;
  uint64_t every = 1;
  uint64_t after = 0;
  uint64_t times = 0;
  double prob = 1.0;
  uint64_t seed = 0;
  double delay_ms = 0.0;
  bool fail = true;
  bool crash = false;
};

/// \brief The process-global registry of armed fault sites. See the file
/// comment for the determinism and overhead contract.
class FaultInjection {
 public:
  static FaultInjection& Global();

  /// Arms `spec` (replacing any armed spec for the same site, resetting its
  /// counters). Fails on an empty site name or non-finite/negative knobs.
  Status Arm(FaultSpec spec);

  /// Parses and arms a `--inject` spec string; multiple sites separated by
  /// ';'. Grammar per site: `name[:key=value[,key=value...]]` with keys
  /// every, after, times, prob, seed, delay_ms, fail, crash — e.g.
  /// `store.append:every=1,times=3;store.read:prob=0.5,seed=7`.
  Status ArmText(const std::string& text);

  /// Parses one `name[:key=value,...]` spec without arming it. The site
  /// name must be one of fault_sites::kKnownSites — an unknown name fails
  /// with InvalidArgument listing the valid sites, instead of arming a dead
  /// hook silently. (Arm() itself accepts any non-empty site, so custom
  /// solver sites stay reachable programmatically.)
  static Result<FaultSpec> Parse(const std::string& text);

  /// Disarms every site and zeroes all counters. The global armed flag
  /// drops, restoring the zero-overhead path.
  void Reset();

  /// \brief Counts a hit at `site` and returns true when the injected fault
  /// fires (after any injected delay). False — without counting — for sites
  /// that are not armed. Callers go through the free function FaultHit,
  /// which short-circuits when nothing is armed anywhere.
  bool Hit(const char* site);

  /// The Status an injected failure surfaces as (IoError naming the site),
  /// so every fault path is greppable in logs and test output.
  static Status InjectedError(const char* site);

  /// Hits counted / faults fired at `site` since it was armed.
  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  /// Faults fired across all sites since the last Reset.
  uint64_t total_fires() const;

  /// True when any site is armed — the one load on the disarmed hot path.
  static bool armed() { return armed_.load(std::memory_order_relaxed); }

 private:
  struct SiteState {
    FaultSpec spec;
    uint64_t hit_count = 0;
    uint64_t fire_count = 0;
  };

  FaultInjection() = default;

  static std::atomic<bool> armed_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, SiteState> sites_;
  uint64_t total_fires_ = 0;
};

/// \brief The one call production code makes at a fault site. Disarmed cost:
/// a single relaxed atomic load.
inline bool FaultHit(const char* site) {
  if (!FaultInjection::armed()) return false;
  return FaultInjection::Global().Hit(site);
}

}  // namespace dcs

#endif  // DCS_UTIL_FAULT_INJECTION_H_
