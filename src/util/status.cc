#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace dcs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotConverged:
      return "Not converged";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void AbortWithStatus(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dcs
