// Deterministic pseudo-random number generation for generators and tests.
//
// All randomness in libdcs flows through dcs::Rng (xoshiro256** seeded via
// SplitMix64) so that every dataset, test sweep and bench run is reproducible
// from a single uint64 seed, independent of the standard library's
// distribution implementations.

#ifndef DCS_UTIL_RNG_H_
#define DCS_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dcs {

/// \brief SplitMix64 step; used to expand seeds and as a cheap hash.
uint64_t SplitMix64(uint64_t* state);

/// \brief Deterministic xoshiro256** generator.
class Rng {
 public:
  /// Seeds the four-word state by iterating SplitMix64 on `seed`.
  explicit Rng(uint64_t seed = 0xDC5DC5DC5ull);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Geometric number of failures before first success; support {0,1,2,...};
  /// success probability p in (0,1].
  uint64_t Geometric(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-like integer in [0, n): P(k) proportional to 1/(k+1)^alpha.
  /// Sampled by inversion on a precomputable CDF is avoided; this uses
  /// rejection and is suitable for alpha in (0.5, 3].
  uint64_t Zipf(uint64_t n, double alpha);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
};

}  // namespace dcs

#endif  // DCS_UTIL_RNG_H_
