// Status / Result<T> error handling for libdcs.
//
// libdcs is exception-free in the style of Arrow and RocksDB: fallible
// operations return a `dcs::Status`, and fallible operations that produce a
// value return a `dcs::Result<T>`. Logic errors inside the library itself
// (broken invariants) are reported through DCS_CHECK in logging.h.

#ifndef DCS_UTIL_STATUS_H_
#define DCS_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dcs {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kNotConverged = 6,
  kInternal = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
};

/// \brief Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// The OK status carries no allocation; error statuses store their message on
/// the heap so that Status stays one pointer wide.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotConverged() const { return code() == StatusCode::kNotConverged; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// The error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so that Status is cheaply copyable; errors are cold paths.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or an error Status.
///
/// Access the value only after checking `ok()`; accessing the value of an
/// errored Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common return path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is a logic
  /// error and is normalized to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void AbortIfError() const;
  std::variant<Status, T> repr_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortWithStatus(std::get<Status>(repr_));
}

/// Propagates an error Status from the enclosing function.
#define DCS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::dcs::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates a Result-returning expression, propagating errors and otherwise
/// assigning the value to `lhs`.
#define DCS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define DCS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DCS_ASSIGN_OR_RETURN_NAME(a, b) DCS_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DCS_ASSIGN_OR_RETURN(lhs, expr) \
  DCS_ASSIGN_OR_RETURN_IMPL(            \
      DCS_ASSIGN_OR_RETURN_NAME(_dcs_result_, __LINE__), lhs, expr)

}  // namespace dcs

#endif  // DCS_UTIL_STATUS_H_
