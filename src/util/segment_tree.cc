#include "util/segment_tree.h"

#include "util/logging.h"

namespace dcs {

MinSegmentTree::MinSegmentTree(const std::vector<double>& values) {
  Build(values);
}

MinSegmentTree::MinSegmentTree(size_t size, double fill) {
  Build(std::vector<double>(size, fill));
}

void MinSegmentTree::Build(const std::vector<double>& values) {
  size_ = values.size();
  base_ = 1;
  while (base_ < size_ || base_ == 0) base_ <<= 1;
  tree_.assign(2 * base_, kDeleted);
  arg_.assign(2 * base_, kNoIndex);
  for (size_t i = 0; i < size_; ++i) {
    tree_[base_ + i] = values[i];
    arg_[base_ + i] = i;
  }
  for (size_t node = base_ - 1; node >= 1; --node) Pull(node);
}

void MinSegmentTree::Pull(size_t node) {
  const size_t l = 2 * node, r = 2 * node + 1;
  // "<=" keeps the tie-break towards smaller indices because the left child
  // always covers smaller leaves.
  if (tree_[l] <= tree_[r]) {
    tree_[node] = tree_[l];
    arg_[node] = arg_[l];
  } else {
    tree_[node] = tree_[r];
    arg_[node] = arg_[r];
  }
}

double MinSegmentTree::Get(size_t i) const {
  DCS_CHECK(i < size_);
  return tree_[base_ + i];
}

void MinSegmentTree::Assign(size_t i, double v) {
  DCS_CHECK(i < size_);
  size_t node = base_ + i;
  tree_[node] = v;
  for (node >>= 1; node >= 1; node >>= 1) Pull(node);
}

void MinSegmentTree::Add(size_t i, double delta) {
  DCS_CHECK(i < size_);
  if (IsErased(i)) return;
  Assign(i, tree_[base_ + i] + delta);
}

void MinSegmentTree::Erase(size_t i) { Assign(i, kDeleted); }

bool MinSegmentTree::IsErased(size_t i) const {
  DCS_CHECK(i < size_);
  return tree_[base_ + i] == kDeleted;
}

MinSegmentTree::MinEntry MinSegmentTree::Min() const {
  if (tree_[1] == kDeleted) return MinEntry{kNoIndex, kDeleted};
  return MinEntry{arg_[1], tree_[1]};
}

MinSegmentTree::MinEntry MinSegmentTree::RangeMin(size_t lo, size_t hi) const {
  DCS_CHECK(lo <= hi && hi <= size_);
  MinEntry best{kNoIndex, kDeleted};
  size_t l = base_ + lo, r = base_ + hi;
  // Standard iterative bottom-up range decomposition; collect candidates and
  // keep the leftmost among minima by preferring lower leaf indices on ties.
  auto consider = [&](size_t node) {
    if (tree_[node] < best.value ||
        (tree_[node] == best.value && arg_[node] < best.index)) {
      best = MinEntry{arg_[node], tree_[node]};
    }
  };
  while (l < r) {
    if (l & 1) consider(l++);
    if (r & 1) consider(--r);
    l >>= 1;
    r >>= 1;
  }
  if (best.value == kDeleted) return MinEntry{kNoIndex, kDeleted};
  return best;
}

}  // namespace dcs
