// Wall-clock timing for the benchmark harness.

#ifndef DCS_UTIL_TIMER_H_
#define DCS_UTIL_TIMER_H_

#include <chrono>

namespace dcs {

/// \brief Monotonic wall-clock stopwatch.
///
/// Starts running on construction; `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dcs

#endif  // DCS_UTIL_TIMER_H_
