#include "util/dense_solver.h"

#include <cmath>

namespace dcs {

Result<std::vector<double>> SolveLinearSystem(DenseMatrix a,
                                              std::vector<double> b) {
  const size_t n = a.n();
  if (b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: dimension mismatch");
  }
  constexpr double kPivotEps = 1e-12;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a.At(row, col)) > std::fabs(a.At(pivot, col))) pivot = row;
    }
    if (std::fabs(a.At(pivot, col)) < kPivotEps) {
      return Status::NotConverged("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a.At(pivot, j), a.At(col, j));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a.At(col, col);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a.At(row, col) * inv;
      if (factor == 0.0) continue;
      for (size_t j = col; j < n; ++j) {
        a.At(row, j) -= factor * a.At(col, j);
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t j = i + 1; j < n; ++j) acc -= a.At(i, j) * x[j];
    x[i] = acc / a.At(i, i);
  }
  return x;
}

Result<std::vector<double>> InteriorSimplexMaximizer(const DenseMatrix& a) {
  const size_t n = a.n();
  if (n == 0) return Status::InvalidArgument("empty matrix");
  if (n == 1) return std::vector<double>{1.0};
  DCS_ASSIGN_OR_RETURN(std::vector<double> y,
                       SolveLinearSystem(a, std::vector<double>(n, 1.0)));
  double total = 0.0;
  for (double v : y) total += v;
  if (std::fabs(total) < 1e-12) {
    return Status::NotConverged("InteriorSimplexMaximizer: degenerate sum");
  }
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = y[i] / total;
    if (!(x[i] > 0.0)) {
      return Status::NotFound("maximizer is not interior");
    }
  }
  return x;
}

}  // namespace dcs
