#include "util/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace dcs {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace dcs
