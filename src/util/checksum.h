// Page checksums for the persistent artifact store.
//
// The store (store/artifact_store.h) frames its file into checksummed pages
// in the single-file storage-engine style: every page header carries a
// 64-bit checksum of its payload, and a mismatch on load takes the
// rebuild-and-overwrite path instead of trusting the bytes. The checksum is
// built from the same splitmix64 finalization step as the content
// fingerprints (util/hash.h) — one mixing construction for the whole repo —
// chained over 8-byte words with the length folded in, so it is stable
// across processes and platforms, detects any single flipped bit, and
// distinguishes payloads that differ only by trailing zero bytes.

#ifndef DCS_UTIL_CHECKSUM_H_
#define DCS_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/hash.h"

namespace dcs {

/// \brief 64-bit checksum of `size` bytes at `data`.
///
/// Chains MixFingerprint over the payload's 8-byte little-endian words (the
/// tail word zero-padded) seeded with the payload length, so two payloads of
/// different length never reduce to the same word sequence. Order-sensitive:
/// unlike the commutative content accumulators, swapping two words changes
/// the value. O(size); `data` may be null when `size` is 0.
inline uint64_t PageChecksum(const void* data, size_t size) {
  // Seed distinguishes the checksum domain from the fingerprint domain and
  // folds the length up front (no zero-padding ambiguity at the tail).
  uint64_t h = MixFingerprint(0x6463735f70616765ull,  // "dcs_page"
                              static_cast<uint64_t>(size));
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    h = MixFingerprint(h, word);
  }
  if (i < size) {
    uint64_t word = 0;
    std::memcpy(&word, bytes + i, size - i);
    h = MixFingerprint(h, word);
  }
  return h;
}

}  // namespace dcs

#endif  // DCS_UTIL_CHECKSUM_H_
