// Small dense linear algebra used by the exact DCSGA oracle.
//
// The optimal affinity embedding supported on a clique K satisfies
// (A x)_u = const for all u in K together with 1ᵀx = 1 (the KKT system of
// max xᵀAx on the simplex restricted to K). The brute-force oracle in
// src/densest/exact.cc enumerates candidate cliques and solves this system
// with partial-pivot Gaussian elimination; matrices involved are tiny
// (≤ ~16x16), so simplicity beats numerics sophistication here.

#ifndef DCS_UTIL_DENSE_SOLVER_H_
#define DCS_UTIL_DENSE_SOLVER_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace dcs {

/// \brief Row-major dense square matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix(size_t n, double fill = 0.0) : n_(n), data_(n * n, fill) {}

  size_t n() const { return n_; }
  double& At(size_t i, size_t j) { return data_[i * n_ + j]; }
  double At(size_t i, size_t j) const { return data_[i * n_ + j]; }

 private:
  size_t n_;
  std::vector<double> data_;
};

/// \brief Solves A x = b by Gaussian elimination with partial pivoting.
///
/// Returns InvalidArgument on dimension mismatch and NotConverged when the
/// matrix is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(DenseMatrix a,
                                              std::vector<double> b);

/// \brief Maximizes xᵀAx over the simplex restricted to the full support
/// {0,...,n-1}, assuming the maximizer is interior (all x_i > 0).
///
/// Solves A y = 1 and normalizes. Returns NotConverged if the KKT system is
/// singular, and NotFound if the normalized solution leaves the simplex
/// (some coordinate non-positive), meaning the interior assumption fails.
Result<std::vector<double>> InteriorSimplexMaximizer(const DenseMatrix& a);

}  // namespace dcs

#endif  // DCS_UTIL_DENSE_SOLVER_H_
