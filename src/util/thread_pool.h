// A fixed-size worker pool with caller participation.
//
// The pool owns `num_workers` threads draining a shared FIFO task queue.
// Work is submitted in groups via RunTasks(n, fn), which executes fn(0..n-1)
// and blocks until every index finished. The calling thread participates in
// its own group, which gives two properties the libdcs scale-out path needs:
//
//  * total concurrency of a group is num_workers + 1, so a pool budget of P
//    is built as ThreadPool(P - 1);
//  * RunTasks may be called from inside a pool task (MineAll solves requests
//    on the pool, and each request's NewSEA shards its seeds onto the same
//    pool) without deadlock — even when every worker is busy, the nested
//    caller drains its own group.
//
// The first exception thrown by any task of a group is captured and rethrown
// from that group's RunTasks; remaining tasks still run to completion.

#ifndef DCS_UTIL_THREAD_POOL_H_
#define DCS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcs {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads. 0 is valid: every RunTasks then executes
  /// inline on the calling thread.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }
  /// Workers plus the participating caller — the group-level parallelism.
  size_t concurrency() const { return workers_.size() + 1; }

  /// std::thread::hardware_concurrency with the 0-means-unknown case mapped
  /// to 1.
  static size_t DefaultConcurrency();

  /// \brief Runs fn(0) … fn(num_tasks - 1) across the pool and the calling
  /// thread; returns when all of them completed. Rethrows the first captured
  /// task exception. Safe to call concurrently and from inside a pool task.
  void RunTasks(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  // One RunTasks call; lives on the caller's stack for its whole duration.
  struct Group {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t next = 0;        // next index to hand out
    size_t unfinished = 0;  // indices not yet completed
    std::exception_ptr error;
    std::condition_variable done;
  };

  void WorkerLoop();
  // Pops one index of `group` and runs it. Mutex held on entry and exit.
  void RunOneIndex(Group* group, std::unique_lock<std::mutex>* lock);
  // Unlinks `group` from active_groups_ if its indices are exhausted.
  void MaybeRetire(Group* group);

  std::mutex mutex_;
  std::condition_variable work_available_;
  // Groups that still have indices to hand out, FIFO.
  std::deque<Group*> active_groups_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

}  // namespace dcs

#endif  // DCS_UTIL_THREAD_POOL_H_
