// Minimal leveled logging and invariant checking for libdcs.
//
// DCS_LOG(INFO) << "...";  levels: DEBUG < INFO < WARNING < ERROR.
// The global threshold defaults to WARNING so that library users are not
// spammed; benches raise it to INFO explicitly.
//
// DCS_CHECK(cond) aborts with a source location when an internal invariant is
// violated. It is active in all build types: in a data-systems library a
// silently corrupted structure is worse than a crash.

#ifndef DCS_UTIL_LOGGING_H_
#define DCS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dcs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

/// Sets the global minimum level that is actually emitted to stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One in-flight log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& extra);

/// Builds the optional "extra" message of a failed DCS_CHECK.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(expr_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DCS_LOG_INTERNAL(level)                                      \
  ::dcs::internal::LogMessage(level, __FILE__, __LINE__).stream()
#define DCS_LOG(severity) DCS_LOG_INTERNAL(::dcs::LogLevel::k##severity)

#define DCS_CHECK(cond)                                                   \
  if (cond) {                                                             \
  } else /* NOLINT */                                                     \
    ::dcs::internal::CheckMessage(#cond, __FILE__, __LINE__).stream()

#define DCS_DCHECK(cond) DCS_CHECK(cond)

}  // namespace dcs

#endif  // DCS_UTIL_LOGGING_H_
