// Hash mixing shared by the content-fingerprint machinery.
//
// Graph::ContentFingerprint and the PipelineCache keys chain the same
// splitmix64 finalization step, so the construction lives here once; the
// cross-file claims ("same construction as ...") stay true by definition.

#ifndef DCS_UTIL_HASH_H_
#define DCS_UTIL_HASH_H_

#include <bit>
#include <cstdint>

namespace dcs {

/// \brief One splitmix64 finalization step folding `v` into `h`.
///
/// Stable across processes and platforms. Note h and v are *added* before
/// mixing, so a single step is symmetric in its arguments — chain two steps
/// (mix a seed, then each operand in turn) when order must matter, as the
/// (G1, G2) pair fingerprint does.
inline uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  uint64_t z = h + 0x9e3779b97f4a7c15ull + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// MixFingerprint over a double's exact bit pattern (distinguishes -0.0
/// from 0.0 and is NaN-stable, matching the bitwise key equality of the
/// pipeline cache).
inline uint64_t MixFingerprintDouble(uint64_t h, double v) {
  return MixFingerprint(h, std::bit_cast<uint64_t>(v));
}

}  // namespace dcs

#endif  // DCS_UTIL_HASH_H_
