#include "baseline/egoscan.h"

#include <algorithm>
#include <numeric>

#include "graph/stats.h"

namespace dcs {
namespace {

// Local-search state: membership bitmap + each vertex's induced degree
// deg_in(v) = Σ_{u in S} D(u,v), maintained incrementally.
class TotalWeightSearch {
 public:
  explicit TotalWeightSearch(const Graph& gd)
      : gd_(gd), member_(gd.NumVertices(), 0), deg_in_(gd.NumVertices(), 0.0) {}

  void Reset() {
    for (VertexId v : members_) {
      member_[v] = 0;
      for (const Neighbor& nb : gd_.NeighborsOf(v)) deg_in_[nb.to] = 0.0;
      deg_in_[v] = 0.0;
    }
    members_.clear();
    total_weight_ = 0.0;
  }

  void Add(VertexId v) {
    member_[v] = 1;
    members_.push_back(v);
    total_weight_ += 2.0 * deg_in_[v];
    for (const Neighbor& nb : gd_.NeighborsOf(v)) deg_in_[nb.to] += nb.weight;
  }

  void Remove(VertexId v) {
    member_[v] = 0;
    members_.erase(std::find(members_.begin(), members_.end(), v));
    for (const Neighbor& nb : gd_.NeighborsOf(v)) deg_in_[nb.to] -= nb.weight;
    total_weight_ -= 2.0 * deg_in_[v];
  }

  bool IsMember(VertexId v) const { return member_[v] != 0; }
  double DegIn(VertexId v) const { return deg_in_[v]; }
  double total_weight() const { return total_weight_; }
  const std::vector<VertexId>& members() const { return members_; }

 private:
  const Graph& gd_;
  std::vector<char> member_;
  std::vector<double> deg_in_;
  std::vector<VertexId> members_;
  double total_weight_ = 0.0;
};

}  // namespace

Result<EgoScanResult> RunEgoScan(const Graph& gd,
                                 const EgoScanOptions& options) {
  const VertexId n = gd.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options.num_seeds == 0) {
    return Status::InvalidArgument("num_seeds must be >= 1");
  }

  // Seed order: descending positive weighted degree.
  std::vector<double> positive_degree(n, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : gd.NeighborsOf(u)) {
      if (nb.weight > 0.0) positive_degree[u] += nb.weight;
    }
  }
  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), VertexId{0});
  std::sort(seeds.begin(), seeds.end(), [&](VertexId a, VertexId b) {
    return positive_degree[a] > positive_degree[b];
  });
  seeds.resize(std::min<size_t>(seeds.size(), options.num_seeds));

  EgoScanResult result;
  result.subset = {0};
  result.total_weight = 0.0;
  TotalWeightSearch search(gd);
  for (VertexId seed : seeds) {
    if (positive_degree[seed] <= 0.0) break;  // no positive ego net left
    search.Reset();
    // Initial set: the seed plus its positively connected neighbors.
    search.Add(seed);
    for (const Neighbor& nb : gd.NeighborsOf(seed)) {
      if (nb.weight > 0.0) search.Add(nb.to);
    }
    // Alternate greedy add / remove until a local optimum of W_D(S).
    for (uint32_t round = 0; round < options.max_rounds; ++round) {
      bool changed = false;
      // Add pass: any outside vertex with positive induced degree raises
      // W_D(S) by 2·deg_in. Collect the frontier first: only neighbors of S
      // can have deg_in != 0.
      std::vector<VertexId> frontier;
      for (VertexId v : search.members()) {
        for (const Neighbor& nb : gd.NeighborsOf(v)) {
          if (!search.IsMember(nb.to) && search.DegIn(nb.to) > 0.0) {
            frontier.push_back(nb.to);
          }
        }
      }
      std::sort(frontier.begin(), frontier.end());
      frontier.erase(std::unique(frontier.begin(), frontier.end()),
                     frontier.end());
      for (VertexId v : frontier) {
        ++result.vertices_examined;
        if (!search.IsMember(v) && search.DegIn(v) > 0.0) {
          search.Add(v);
          changed = true;
        }
      }
      // Remove pass: dropping v with deg_in(v) < 0 raises W_D(S).
      const std::vector<VertexId> snapshot = search.members();
      for (VertexId v : snapshot) {
        ++result.vertices_examined;
        if (search.members().size() > 1 && search.DegIn(v) < 0.0) {
          search.Remove(v);
          changed = true;
        }
      }
      if (!changed) break;
    }
    if (search.total_weight() > result.total_weight) {
      result.total_weight = search.total_weight();
      result.subset = search.members();
    }
  }
  std::sort(result.subset.begin(), result.subset.end());
  result.total_weight = TotalDegree(gd, result.subset);
  result.density = AverageDegreeDensity(gd, result.subset);
  return result;
}

}  // namespace dcs
