#include "baseline/quasi_clique.h"

#include <algorithm>
#include <numeric>

#include "graph/stats.h"

namespace dcs {
namespace {

// Incremental local-search state over membership + induced degrees.
// f_α(S ∪ {v}) − f_α(S)  =  deg_in(v) − α·|S|
// f_α(S \ {v}) − f_α(S)  = −deg_in(v) + α·(|S|−1)
class OqcState {
 public:
  OqcState(const Graph& graph, double alpha)
      : graph_(graph),
        alpha_(alpha),
        member_(graph.NumVertices(), 0),
        deg_in_(graph.NumVertices(), 0.0) {}

  void Reset() {
    for (VertexId v : members_) {
      member_[v] = 0;
      for (const Neighbor& nb : graph_.NeighborsOf(v)) deg_in_[nb.to] = 0.0;
      deg_in_[v] = 0.0;
    }
    members_.clear();
    edge_weight_ = 0.0;
  }

  void Add(VertexId v) {
    member_[v] = 1;
    members_.push_back(v);
    edge_weight_ += deg_in_[v];
    for (const Neighbor& nb : graph_.NeighborsOf(v)) deg_in_[nb.to] += nb.weight;
  }

  void Remove(VertexId v) {
    member_[v] = 0;
    members_.erase(std::find(members_.begin(), members_.end(), v));
    for (const Neighbor& nb : graph_.NeighborsOf(v)) deg_in_[nb.to] -= nb.weight;
    edge_weight_ -= deg_in_[v];
  }

  double AddGain(VertexId v) const {
    return deg_in_[v] - alpha_ * static_cast<double>(members_.size());
  }
  double RemoveGain(VertexId v) const {
    return -deg_in_[v] + alpha_ * static_cast<double>(members_.size() - 1);
  }

  bool IsMember(VertexId v) const { return member_[v] != 0; }
  double objective() const {
    const double size = static_cast<double>(members_.size());
    return edge_weight_ - alpha_ * size * (size - 1.0) / 2.0;
  }
  double edge_weight() const { return edge_weight_; }
  const std::vector<VertexId>& members() const { return members_; }
  const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  double alpha_;
  std::vector<char> member_;
  std::vector<double> deg_in_;
  std::vector<VertexId> members_;
  double edge_weight_ = 0.0;
};

}  // namespace

double QuasiCliqueObjective(const Graph& graph,
                            std::span<const VertexId> subset, double alpha) {
  const double size = static_cast<double>(subset.size());
  // TotalDegree counts each edge twice (Table I convention); w(S) is half.
  return 0.5 * TotalDegree(graph, subset) - alpha * size * (size - 1.0) / 2.0;
}

Result<QuasiCliqueResult> RunQuasiCliqueSearch(
    const Graph& graph, const QuasiCliqueOptions& options) {
  if (graph.NumVertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (options.alpha < 0.0 || options.num_seeds == 0) {
    return Status::InvalidArgument("alpha must be >= 0, num_seeds >= 1");
  }
  const VertexId n = graph.NumVertices();
  std::vector<double> positive_degree(n, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (nb.weight > 0.0) positive_degree[u] += nb.weight;
    }
  }
  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), VertexId{0});
  std::sort(seeds.begin(), seeds.end(), [&](VertexId a, VertexId b) {
    return positive_degree[a] > positive_degree[b];
  });
  seeds.resize(std::min<size_t>(seeds.size(), options.num_seeds));

  QuasiCliqueResult best;
  best.subset = {seeds.empty() ? VertexId{0} : seeds[0]};
  best.objective = 0.0;
  OqcState state(graph, options.alpha);
  for (VertexId seed : seeds) {
    state.Reset();
    state.Add(seed);
    for (uint32_t round = 0; round < options.max_rounds; ++round) {
      bool changed = false;
      // Best-improvement add pass over the frontier.
      std::vector<VertexId> frontier;
      for (VertexId v : state.members()) {
        for (const Neighbor& nb : graph.NeighborsOf(v)) {
          if (!state.IsMember(nb.to)) frontier.push_back(nb.to);
        }
      }
      std::sort(frontier.begin(), frontier.end());
      frontier.erase(std::unique(frontier.begin(), frontier.end()),
                     frontier.end());
      for (VertexId v : frontier) {
        if (!state.IsMember(v) && state.AddGain(v) > 1e-12) {
          state.Add(v);
          changed = true;
        }
      }
      // Remove pass.
      const std::vector<VertexId> snapshot = state.members();
      for (VertexId v : snapshot) {
        if (state.members().size() > 1 && state.RemoveGain(v) > 1e-12) {
          state.Remove(v);
          changed = true;
        }
      }
      if (!changed) break;
    }
    if (state.objective() > best.objective) {
      best.objective = state.objective();
      best.edge_weight = state.edge_weight();
      best.subset = state.members();
    }
  }
  std::sort(best.subset.begin(), best.subset.end());
  best.objective = QuasiCliqueObjective(graph, best.subset, options.alpha);
  best.edge_weight = 0.5 * TotalDegree(graph, best.subset);
  return best;
}

}  // namespace dcs
