// Optimal quasi-clique (OQC) local search — Tsourakakis et al. [24], the
// objective §III-D relates the α-scaled DCS problem to.
//
// OQC maximizes  f_α(S) = w(S) − α·|S|(|S|−1)/2,  where w(S) is the sum of
// (undirected) edge weights inside S: density minus a quadratic size
// penalty. On a *difference* graph this mines "contrast quasi-cliques" —
// subgraphs whose gained weight beats what a random α-dense subgraph of the
// same size would gain. Implemented with the standard add/remove/swap local
// search of [24]; serves as a third contrast notion next to DCSAD/DCSGA in
// comparisons and tests.

#ifndef DCS_BASELINE_QUASI_CLIQUE_H_
#define DCS_BASELINE_QUASI_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options of the OQC local search.
struct QuasiCliqueOptions {
  /// Size-penalty coefficient α of [24] (1/3 is their recommended default).
  double alpha = 1.0 / 3.0;
  /// Number of highest-positive-degree seeds to try.
  uint32_t num_seeds = 16;
  /// Cap on add/remove passes per seed.
  uint32_t max_rounds = 100;
};

/// Outcome of the search.
struct QuasiCliqueResult {
  std::vector<VertexId> subset;  ///< maximizer found (ascending ids)
  double objective = 0.0;        ///< f_α(S) = w(S) − α·C(|S|,2)
  double edge_weight = 0.0;      ///< w(S): sum of undirected edge weights
};

/// \brief Computes f_α(S) for a given subset (utility for tests/benches).
double QuasiCliqueObjective(const Graph& graph,
                            std::span<const VertexId> subset, double alpha);

/// \brief Runs the OQC local search on a (possibly signed) graph.
/// Fails on an empty vertex set or alpha < 0.
Result<QuasiCliqueResult> RunQuasiCliqueSearch(
    const Graph& graph, const QuasiCliqueOptions& options = {});

}  // namespace dcs

#endif  // DCS_BASELINE_QUASI_CLIQUE_H_
