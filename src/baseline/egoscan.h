// EgoScan-style baseline: maximize the *total* edge-weight difference
// W_D(S) on a signed difference graph (Cadena et al. [6], §VI-E).
//
// Substitution note (DESIGN.md §3): the published EgoScan solves an SDP
// relaxation inside each ego net; the authors' solver is unavailable and an
// SDP dependency is out of scope, so this stand-in optimizes the same
// objective with ego-net-seeded add/remove local search. It preserves the
// behaviour the paper's comparison demonstrates: a total-weight objective
// favours much larger subgraphs with high W_D(S) but low density, and costs
// considerably more time than DCSGreedy / NewSEA.

#ifndef DCS_BASELINE_EGOSCAN_H_
#define DCS_BASELINE_EGOSCAN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options for the EgoScan-style local search.
struct EgoScanOptions {
  /// Number of highest-positive-degree seed vertices to scan.
  uint32_t num_seeds = 32;
  /// Cap on add/remove passes per seed.
  uint32_t max_rounds = 50;
};

/// Outcome of the scan.
struct EgoScanResult {
  std::vector<VertexId> subset;   ///< maximizer found (ascending ids)
  double total_weight = 0.0;      ///< W_D(S), Table I doubled convention
  double density = 0.0;           ///< ρ_D(S), for the Table VIII comparison
  uint64_t vertices_examined = 0; ///< work measure
};

/// \brief Runs the ego-net seeded local search on the (signed) difference
/// graph `gd`. Fails on an empty vertex set.
Result<EgoScanResult> RunEgoScan(const Graph& gd,
                                 const EgoScanOptions& options = {});

}  // namespace dcs

#endif  // DCS_BASELINE_EGOSCAN_H_
