#include "densest/max_clique.h"

#include <algorithm>

namespace dcs {
namespace {

// Branch-and-bound state over a dense adjacency snapshot (the solver is for
// oracle-scale graphs; a bitset-free matrix keeps the code simple).
class CliqueSearch {
 public:
  CliqueSearch(const Graph& graph, uint64_t max_nodes)
      : n_(graph.NumVertices()),
        max_nodes_(max_nodes),
        adjacent_(static_cast<size_t>(n_) * n_, 0) {
    for (VertexId u = 0; u < n_; ++u) {
      for (const Neighbor& nb : graph.NeighborsOf(u)) {
        adjacent_[static_cast<size_t>(u) * n_ + nb.to] = 1;
      }
    }
  }

  bool Adjacent(VertexId a, VertexId b) const {
    return adjacent_[static_cast<size_t>(a) * n_ + b] != 0;
  }

  // Returns false if the node budget was exhausted.
  bool Expand(std::vector<VertexId>* candidates,
              std::vector<VertexId>* current) {
    if (++nodes_expanded_ > max_nodes_) return false;
    while (!candidates->empty()) {
      // Greedy coloring bound: color candidates; if |current| + colors used
      // cannot beat the incumbent, prune the whole subtree.
      std::vector<int> color(candidates->size(), 0);
      int num_colors = 0;
      for (size_t i = 0; i < candidates->size(); ++i) {
        // Smallest color not used by earlier adjacent candidates.
        int used_mask_limit = num_colors + 1;
        std::vector<char> used(used_mask_limit + 2, 0);
        for (size_t j = 0; j < i; ++j) {
          if (Adjacent((*candidates)[i], (*candidates)[j])) {
            if (color[j] <= used_mask_limit) used[color[j]] = 1;
          }
        }
        int c = 1;
        while (c <= used_mask_limit && used[c]) ++c;
        color[i] = c;
        num_colors = std::max(num_colors, c);
      }
      // Order candidates by color ascending so the last one has the max
      // color (standard Tomita ordering: branch on high-color vertices).
      std::vector<size_t> order(candidates->size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](size_t a, size_t b) { return color[a] < color[b]; });
      // Branch on the highest-color candidate.
      const size_t pick_pos = order.back();
      const VertexId pick = (*candidates)[pick_pos];
      if (current->size() + static_cast<size_t>(color[pick_pos]) <=
          best_.size()) {
        return true;  // bound: even the best coloring cannot improve
      }
      current->push_back(pick);
      std::vector<VertexId> next;
      for (VertexId c : *candidates) {
        if (c != pick && Adjacent(pick, c)) next.push_back(c);
      }
      if (next.empty()) {
        if (current->size() > best_.size()) best_ = *current;
      } else {
        if (!Expand(&next, current)) return false;
      }
      current->pop_back();
      candidates->erase(candidates->begin() + static_cast<long>(pick_pos));
    }
    return true;
  }

  bool Run() {
    std::vector<VertexId> candidates(n_);
    for (VertexId v = 0; v < n_; ++v) candidates[v] = v;
    // Degeneracy-order candidates: low-core vertices get eliminated early.
    std::vector<VertexId> current;
    return Expand(&candidates, &current);
  }

  std::vector<VertexId> best() const { return best_; }
  uint64_t nodes_expanded() const { return nodes_expanded_; }

 private:
  VertexId n_;
  uint64_t max_nodes_;
  uint64_t nodes_expanded_ = 0;
  std::vector<char> adjacent_;
  std::vector<VertexId> best_;
};

}  // namespace

Result<MaxCliqueResult> FindMaxClique(const Graph& graph,
                                      const MaxCliqueOptions& options) {
  MaxCliqueResult result;
  if (graph.NumVertices() == 0) return result;
  CliqueSearch search(graph, options.max_nodes);
  if (!search.Run()) {
    return Status::NotConverged("max-clique node budget exhausted");
  }
  result.members = search.best();
  if (result.members.empty()) result.members = {0};  // edgeless graph
  std::sort(result.members.begin(), result.members.end());
  result.nodes_expanded = search.nodes_expanded();
  return result;
}

}  // namespace dcs
