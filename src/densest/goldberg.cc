#include "densest/goldberg.h"

#include <algorithm>

#include "densest/maxflow.h"
#include "graph/stats.h"

namespace dcs {
namespace {

// Runs one min-cut probe at density guess g; returns the source-side vertex
// set (excluding s), which is non-empty iff some subset beats density g.
std::vector<VertexId> ProbeDensity(const Graph& graph, double g) {
  const VertexId n = graph.NumVertices();
  const uint32_t source = n;
  const uint32_t sink = n + 1;
  MaxFlow flow(n + 2);
  for (VertexId v = 0; v < n; ++v) {
    const double degw = graph.WeightedDegree(v);
    flow.AddArc(source, v, degw);
    flow.AddArc(v, sink, g);
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      // Each undirected edge contributes one arc per direction; we add v->nb
      // here and nb->v when the loop reaches nb.
      flow.AddArc(v, nb.to, nb.weight);
    }
  }
  flow.Solve(source, sink);
  const std::vector<char> side = flow.MinCutSourceSide(source);
  std::vector<VertexId> subset;
  for (VertexId v = 0; v < n; ++v) {
    if (side[v]) subset.push_back(v);
  }
  return subset;
}

}  // namespace

Result<DensestSubgraphResult> GoldbergDensestSubgraph(const Graph& graph,
                                                      double tolerance) {
  if (tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  const VertexId n = graph.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  double max_weight = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.NeighborsOf(v)) {
      if (nb.weight <= 0.0) {
        return Status::InvalidArgument(
            "GoldbergDensestSubgraph requires positive edge weights");
      }
      max_weight = std::max(max_weight, nb.weight);
    }
  }
  DensestSubgraphResult best;
  best.subset = {0};
  best.density = 0.0;
  if (graph.NumEdges() == 0) return best;

  // Densities live in (0, (n-1)·max_weight]. Invariant: some subset beats
  // `lo` (witnessed by best.subset); no subset beats `hi`.
  double lo = 0.0;
  double hi = static_cast<double>(n - 1) * max_weight + tolerance;
  {
    std::vector<VertexId> witness = ProbeDensity(graph, lo);
    if (witness.empty()) return best;  // defensive; m >= 1 implies ρ > 0 exists
    best.subset = std::move(witness);
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    std::vector<VertexId> witness = ProbeDensity(graph, mid);
    if (!witness.empty()) {
      lo = mid;
      best.subset = std::move(witness);
    } else {
      hi = mid;
    }
  }
  best.density = AverageDegreeDensity(graph, best.subset);
  return best;
}

}  // namespace dcs
