// Dinic's maximum-flow algorithm on real-valued capacities.
//
// Substrate for the exact densest-subgraph solver (Goldberg's max-flow
// reduction, densest/goldberg.h). Capacities are doubles; residual arcs
// below kFlowEps are treated as saturated, which is standard practice for
// flow networks whose capacities come from graph weights.

#ifndef DCS_DENSEST_MAXFLOW_H_
#define DCS_DENSEST_MAXFLOW_H_

#include <cstdint>
#include <vector>

namespace dcs {

/// \brief Max-flow solver (Dinic) over a mutable arc list.
class MaxFlow {
 public:
  static constexpr double kFlowEps = 1e-9;

  /// \param num_nodes total node count; node ids in [0, num_nodes).
  explicit MaxFlow(uint32_t num_nodes);

  /// Adds a directed arc u -> v with the given capacity (>= 0) and its
  /// residual reverse arc of capacity 0. Returns the arc index (for
  /// inspecting flows after the run).
  uint32_t AddArc(uint32_t u, uint32_t v, double capacity);

  /// Computes the max flow from s to t. May be called once per instance.
  double Solve(uint32_t s, uint32_t t);

  /// After Solve: nodes reachable from `s` in the residual network — the
  /// source side of a minimum cut.
  std::vector<char> MinCutSourceSide(uint32_t s) const;

  /// Remaining capacity of arc `arc_index`.
  double ResidualCapacity(uint32_t arc_index) const {
    return arcs_[arc_index].capacity;
  }

 private:
  struct Arc {
    uint32_t to;
    uint32_t rev;  // index of the reverse arc in arcs_
    double capacity;
  };

  bool BuildLevels(uint32_t s, uint32_t t);
  double PushBlocking(uint32_t u, uint32_t t, double limit);

  uint32_t num_nodes_;
  std::vector<std::vector<uint32_t>> adjacency_;  // arc indices per node
  std::vector<Arc> arcs_;
  std::vector<int32_t> level_;
  std::vector<uint32_t> iter_;
};

}  // namespace dcs

#endif  // DCS_DENSEST_MAXFLOW_H_
