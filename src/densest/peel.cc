#include "densest/peel.h"

#include "util/logging.h"
#include "util/segment_tree.h"

namespace dcs {

PeelResult GreedyPeel(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  PeelResult result;
  if (n == 0) return result;

  std::vector<double> degrees(n);
  double total_degree = 0.0;  // W(S) for the current S
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = graph.WeightedDegree(v);
    total_degree += degrees[v];
  }
  MinSegmentTree tree(degrees);

  // Best prefix: after removing the first `t` vertices of peel_order the
  // density is density_after[t]; t = 0 is the full vertex set.
  double best_density = total_degree / static_cast<double>(n);
  size_t best_removed = 0;

  result.peel_order.reserve(n);
  std::vector<char> removed(n, 0);
  for (VertexId remaining = n; remaining > 1; --remaining) {
    const MinSegmentTree::MinEntry min_entry = tree.Min();
    DCS_CHECK(min_entry.index != MinSegmentTree::kNoIndex);
    const VertexId victim = static_cast<VertexId>(min_entry.index);
    // Removing `victim` subtracts its current induced degree from every
    // neighbor and removes it twice over from W(S) (its row and its column).
    total_degree -= 2.0 * min_entry.value;
    tree.Erase(victim);
    removed[victim] = 1;
    result.peel_order.push_back(victim);
    for (const Neighbor& nb : graph.NeighborsOf(victim)) {
      if (!removed[nb.to]) tree.Add(nb.to, -nb.weight);
    }
    const double density =
        total_degree / static_cast<double>(remaining - 1);
    if (density > best_density) {
      best_density = density;
      best_removed = result.peel_order.size();
    }
  }
  // Complete the peel order for callers that want the full permutation.
  {
    const MinSegmentTree::MinEntry last = tree.Min();
    if (last.index != MinSegmentTree::kNoIndex) {
      result.peel_order.push_back(static_cast<VertexId>(last.index));
    }
  }

  result.density = best_density;
  std::vector<char> in_best(n, 1);
  for (size_t t = 0; t < best_removed; ++t) in_best[result.peel_order[t]] = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (in_best[v]) result.subset.push_back(v);
  }
  return result;
}

}  // namespace dcs
