#include "densest/exact.h"

#include <string>

#include "util/dense_solver.h"

namespace dcs {
namespace {

// Dense symmetric weight matrix of a tiny graph (zero diagonal).
std::vector<std::vector<double>> DenseWeights(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) w[u][nb.to] = nb.weight;
  }
  return w;
}

}  // namespace

Result<ExactDcsadResult> ExactDcsadBruteForce(const Graph& gd,
                                              int max_vertices) {
  const VertexId n = gd.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (n > static_cast<VertexId>(max_vertices)) {
    return Status::InvalidArgument("graph too large for brute force: n=" +
                                   std::to_string(n));
  }
  const auto w = DenseWeights(gd);
  ExactDcsadResult best;
  best.subset = {0};
  best.density = 0.0;  // a singleton always achieves 0
  const uint32_t limit = 1u << n;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    double twice_internal_weight = 0.0;
    int size = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (!(mask & (1u << u))) continue;
      ++size;
      for (VertexId v = static_cast<VertexId>(u + 1); v < n; ++v) {
        if (mask & (1u << v)) twice_internal_weight += 2.0 * w[u][v];
      }
    }
    const double density = twice_internal_weight / static_cast<double>(size);
    if (density > best.density) {
      best.density = density;
      best.subset.clear();
      for (VertexId u = 0; u < n; ++u) {
        if (mask & (1u << u)) best.subset.push_back(u);
      }
    }
  }
  return best;
}

Result<ExactDcsgaResult> ExactDcsgaBruteForce(const Graph& gd,
                                              int max_vertices) {
  const VertexId n = gd.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (n > static_cast<VertexId>(max_vertices)) {
    return Status::InvalidArgument("graph too large for brute force: n=" +
                                   std::to_string(n));
  }
  const auto w = DenseWeights(gd);
  ExactDcsgaResult best;
  best.x.assign(n, 0.0);
  best.x[0] = 1.0;
  best.support = {0};
  best.affinity = 0.0;
  const uint32_t limit = 1u << n;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    std::vector<VertexId> members;
    for (VertexId u = 0; u < n; ++u) {
      if (mask & (1u << u)) members.push_back(u);
    }
    if (members.size() < 2) continue;
    // Positive-clique filter (Theorem 5: some optimum is a positive clique).
    bool positive_clique = true;
    for (size_t a = 0; a < members.size() && positive_clique; ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (w[members[a]][members[b]] <= 0.0) {
          positive_clique = false;
          break;
        }
      }
    }
    if (!positive_clique) continue;
    DenseMatrix a(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = 0; j < members.size(); ++j) {
        a.At(i, j) = w[members[i]][members[j]];
      }
    }
    Result<std::vector<double>> interior = InteriorSimplexMaximizer(a);
    // Non-interior or singular supports are covered by their sub-cliques,
    // which this enumeration also visits.
    if (!interior.ok()) continue;
    const std::vector<double>& xs = interior.value();
    double affinity = 0.0;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = 0; j < members.size(); ++j) {
        affinity += xs[i] * xs[j] * a.At(i, j);
      }
    }
    if (affinity > best.affinity) {
      best.affinity = affinity;
      best.support = members;
      best.x.assign(n, 0.0);
      for (size_t i = 0; i < members.size(); ++i) best.x[members[i]] = xs[i];
    }
  }
  return best;
}

}  // namespace dcs
