#include "densest/maxflow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.h"

namespace dcs {

MaxFlow::MaxFlow(uint32_t num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes) {}

uint32_t MaxFlow::AddArc(uint32_t u, uint32_t v, double capacity) {
  DCS_CHECK(u < num_nodes_ && v < num_nodes_);
  DCS_CHECK(capacity >= 0.0);
  const uint32_t forward = static_cast<uint32_t>(arcs_.size());
  arcs_.push_back(Arc{v, forward + 1, capacity});
  arcs_.push_back(Arc{u, forward, 0.0});
  adjacency_[u].push_back(forward);
  adjacency_[v].push_back(forward + 1);
  return forward;
}

bool MaxFlow::BuildLevels(uint32_t s, uint32_t t) {
  level_.assign(num_nodes_, -1);
  std::deque<uint32_t> queue;
  level_[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t arc_index : adjacency_[u]) {
      const Arc& arc = arcs_[arc_index];
      if (arc.capacity > kFlowEps && level_[arc.to] < 0) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlow::PushBlocking(uint32_t u, uint32_t t, double limit) {
  if (u == t) return limit;
  for (uint32_t& i = iter_[u]; i < adjacency_[u].size(); ++i) {
    Arc& arc = arcs_[adjacency_[u][i]];
    if (arc.capacity > kFlowEps && level_[arc.to] == level_[u] + 1) {
      const double pushed =
          PushBlocking(arc.to, t, std::min(limit, arc.capacity));
      if (pushed > 0.0) {
        arc.capacity -= pushed;
        arcs_[arc.rev].capacity += pushed;
        return pushed;
      }
    }
  }
  return 0.0;
}

double MaxFlow::Solve(uint32_t s, uint32_t t) {
  DCS_CHECK(s != t);
  double flow = 0.0;
  while (BuildLevels(s, t)) {
    iter_.assign(num_nodes_, 0);
    while (true) {
      const double pushed =
          PushBlocking(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= 0.0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::vector<char> MaxFlow::MinCutSourceSide(uint32_t s) const {
  std::vector<char> reachable(num_nodes_, 0);
  std::deque<uint32_t> queue;
  reachable[s] = 1;
  queue.push_back(s);
  while (!queue.empty()) {
    const uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t arc_index : adjacency_[u]) {
      const Arc& arc = arcs_[arc_index];
      if (arc.capacity > kFlowEps && !reachable[arc.to]) {
        reachable[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
  }
  return reachable;
}

}  // namespace dcs
