// Goldberg's exact maximum-average-degree subgraph via max-flow.
//
// §II of the paper cites Goldberg [12] as the polynomial exact algorithm for
// the traditional (non-negative weights) densest-subgraph problem. libdcs
// implements it both as part of the substrate the paper builds on and as an
// exact oracle against which the Charikar peel (factor 2) and the DCSGreedy
// candidates are property-tested.
//
// The reduction, for a density guess g (in the Table I doubled convention,
// ρ(S) = W(S)/|S| with W counting each edge twice):
//   source s -> v  with capacity  degw(v)   (weighted degree)
//   v -> sink t    with capacity  g
//   u <-> v        with capacity  w(u,v) each direction
// A minimum cut has value  Σ degw − max_S (2·w_in(S) − g·|S|),
// so min-cut < Σ degw  iff  some S has ρ(S) = 2·w_in(S)/|S| > g.
// Binary search over g pins the optimum to any desired precision.

#ifndef DCS_DENSEST_GOLDBERG_H_
#define DCS_DENSEST_GOLDBERG_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Result of the exact densest-subgraph computation.
struct DensestSubgraphResult {
  std::vector<VertexId> subset;  ///< optimal S (non-empty for m >= 1)
  double density = 0.0;          ///< ρ(S) = W(S)/|S|, doubled convention
};

/// \brief Exact maximum ρ(S) over non-empty S for a graph with strictly
/// positive edge weights.
///
/// \param tolerance absolute precision of the binary search on density.
/// Fails with InvalidArgument if any edge weight is <= 0. A graph with no
/// edges yields a singleton subset of density 0.
Result<DensestSubgraphResult> GoldbergDensestSubgraph(const Graph& graph,
                                                      double tolerance = 1e-7);

}  // namespace dcs

#endif  // DCS_DENSEST_GOLDBERG_H_
