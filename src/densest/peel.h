// Greedy peeling (Algorithm 1 of the paper; Charikar's greedy generalized to
// arbitrary — possibly negative — edge weights).
//
// Repeatedly removes the vertex of minimum current weighted degree and
// returns the best-density prefix ρ(S) = W(S)/|S| (Table I convention: W(S)
// is the total induced degree, every undirected edge counted twice).
//
// On non-negative weights this is Charikar's 2-approximation of the densest
// subgraph; on signed difference graphs it is one of the three candidate
// generators inside DCSGreedy (Algorithm 2) — §IV shows no polynomial
// algorithm can do better than O(n^{1−ε}) there.
//
// Complexity: O((n + m) log n) using a min segment tree over current degrees.

#ifndef DCS_DENSEST_PEEL_H_
#define DCS_DENSEST_PEEL_H_

#include <vector>

#include "graph/graph.h"

namespace dcs {

/// Result of a greedy peel.
struct PeelResult {
  /// Vertex set achieving the best density seen during peeling (never empty
  /// for a non-empty graph; a single vertex has density 0).
  std::vector<VertexId> subset;
  /// ρ(subset) = W(subset)/|subset|.
  double density = 0.0;
  /// Vertices in removal order (first removed first); useful for tests.
  std::vector<VertexId> peel_order;
};

/// Runs Algorithm 1 on `graph`. For an empty vertex set returns an empty
/// result with density 0.
PeelResult GreedyPeel(const Graph& graph);

}  // namespace dcs

#endif  // DCS_DENSEST_PEEL_H_
