// Brute-force exact solvers for tiny instances — the test oracles.
//
// ExactDcsadBruteForce enumerates every non-empty vertex subset, so it is
// limited to ~24 vertices; ExactDcsgaBruteForce enumerates subsets that form
// positive cliques (Theorem 5 guarantees an optimal DCSGA solution supported
// on a positive clique) and solves the interior KKT system on each.

#ifndef DCS_DENSEST_EXACT_H_
#define DCS_DENSEST_EXACT_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Exact DCSAD optimum on a (possibly signed) difference graph.
struct ExactDcsadResult {
  std::vector<VertexId> subset;
  double density = 0.0;  ///< max_S ρ_D(S), Table I doubled convention
};

/// \brief Enumerates all non-empty subsets. Fails with InvalidArgument when
/// the graph has more than `max_vertices` vertices (default 24).
Result<ExactDcsadResult> ExactDcsadBruteForce(const Graph& gd,
                                              int max_vertices = 24);

/// Exact DCSGA optimum.
struct ExactDcsgaResult {
  /// Optimal embedding over the full vertex set (entries sum to 1).
  std::vector<double> x;
  /// Support of x — always a positive clique of gd (Theorem 5).
  std::vector<VertexId> support;
  double affinity = 0.0;  ///< max_x xᵀDx
};

/// \brief Enumerates positive-clique supports and maximizes the quadratic on
/// each via the interior KKT linear system, falling back to sub-cliques when
/// the interior solution leaves the simplex. Fails with InvalidArgument when
/// the graph has more than `max_vertices` vertices (default 20).
Result<ExactDcsgaResult> ExactDcsgaBruteForce(const Graph& gd,
                                              int max_vertices = 20);

}  // namespace dcs

#endif  // DCS_DENSEST_EXACT_H_
