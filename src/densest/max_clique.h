// Exact maximum clique via branch-and-bound with greedy-coloring bounds
// (Tomita-style; the family of algorithms the paper cites as Rossi et
// al. [22] in §V-D).
//
// Used as substrate and oracle: §V-D's smart initialization bounds the
// largest clique containing u by τ_u + 1; §V-C discusses why max-clique
// algorithms do NOT solve weighted DCSGA — both claims are property-tested
// against this exact solver. Edge weights are ignored (cliques are a
// structural notion).

#ifndef DCS_DENSEST_MAX_CLIQUE_H_
#define DCS_DENSEST_MAX_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Options for the branch-and-bound search.
struct MaxCliqueOptions {
  /// Abort with NotConverged after this many search-tree nodes (keeps
  /// adversarial inputs from hanging tests).
  uint64_t max_nodes = 50'000'000;
};

/// Result of a successful search.
struct MaxCliqueResult {
  std::vector<VertexId> members;  ///< a maximum clique, ascending ids
  uint64_t nodes_expanded = 0;
};

/// \brief Finds a maximum clique of `graph` (exact). Empty graph yields an
/// empty clique; otherwise at least one vertex is returned.
Result<MaxCliqueResult> FindMaxClique(const Graph& graph,
                                      const MaxCliqueOptions& options = {});

}  // namespace dcs

#endif  // DCS_DENSEST_MAX_CLIQUE_H_
