// MiningService — the asynchronous, multi-tenant submit/poll surface over
// MinerSessions.
//
// A MinerSession is single-threaded by design; under heavy multi-user
// traffic callers should not block on each other's solves. MiningService
// schedules N tenant sessions (one per graph pair — the constructor session
// is tenant 0, AddTenant registers more) behind per-tenant job queues: any
// thread Submit()s a MiningRequest against a tenant and gets a JobId back
// immediately, then Poll()s or Wait()s for the JobStatus as it walks the
// queued → running → done/failed/cancelled state machine.
//
// Scheduling. MiningServiceOptions::num_executors threads drain the tenant
// queues. Each scheduling decision picks, among tenants that have runnable
// work and no job in flight, the tenant whose head job has the highest
// MiningRequest::priority; ties go to the smallest weighted-fair virtual
// time (each dispatched job advances its tenant's clock by 1/weight, so a
// weight-3 tenant gets 3× the dispatch share of a weight-1 tenant at equal
// priority), and remaining ties to the lowest tenant id. At most one job of
// a tenant runs at a time, so every session stays single-threaded; a job's
// solve still fans out across the shared util/thread_pool
// (MiningServiceOptions::worker_pool) via NewSEA seed sharding, so the
// service saturates the machine while keeping results deterministic.
//
// Ordering & fencing. Each tenant's queue is strict FIFO — priority only
// reorders *between* tenants, never within one. Streaming updates submitted
// through ApplyUpdate are *fenced* in their tenant's queue: an update takes
// effect after every job the tenant submitted before it and before every
// job submitted after it. Each job therefore sees exactly the graph
// snapshot it would have seen mining synchronously at its submission point,
// and a finished job's response is bit-identical to a fresh
// MinerSession::Mine of the same request against that snapshot — at every
// executor count and priority interleaving (the determinism guarantee the
// stress tests enforce).
//
// Admission control. Submit sheds load early instead of queueing
// unboundedly: a full per-tenant queue (TenantOptions::max_queued_jobs,
// defaulting to MiningServiceOptions::max_queued_jobs) rejects with
// OutOfRange — the per-queue backpressure signal — and the service-wide job
// and request-byte budgets (max_total_queued_jobs /
// max_queued_request_bytes) reject with kResourceExhausted. Rejections are
// counted per tenant and service-wide.
//
// Cancellation is cooperative: Cancel() on a queued job guarantees it never
// starts; on a running job it fires the CancelToken that
// MinerSession::Solve threads into the NewSEA seed-shard loop, which aborts
// between seed chunks with no partial result — the session stays reusable
// and resubmitting the identical request yields the exact uncancelled
// answer.
//
// C ABI: this whole surface is exported to non-C++ front-ends through
// include/dcs_c_api.h (opaque handles, integer status codes, no C++ types
// across the boundary).

#ifndef DCS_API_MINING_SERVICE_H_
#define DCS_API_MINING_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/job_journal.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/timer.h"

namespace dcs {

/// Opaque handle of one submitted job; unique within a service.
using JobId = uint64_t;

/// Dense tenant handle returned by AddTenant; the constructor session is
/// tenant 0.
using TenantId = uint32_t;

/// The job lifecycle: kQueued → kRunning → one of the terminal states
/// (kDone / kFailed / kCancelled). A queued job may also go straight to
/// kCancelled without ever running. A job whose
/// MiningRequest::deadline_seconds elapses lands in kFailed carrying
/// StatusCode::kDeadlineExceeded — kCancelled is reserved for explicit
/// Cancel() calls and shutdown.
enum class JobState : uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

/// "queued", "running", "done", "failed" or "cancelled".
const char* JobStateToString(JobState state);

/// \brief Point-in-time snapshot of one job, returned by Poll/Wait/Cancel.
struct JobStatus {
  JobId id = 0;
  /// The tenant the job was submitted against.
  TenantId tenant = 0;
  JobState state = JobState::kQueued;
  /// Failure detail when state == kFailed (the solver's Status, e.g. a
  /// NotFound for an unregistered solver name); OK otherwise.
  Status failure;
  /// The mined response — subgraphs plus per-job MiningTelemetry. Filled
  /// only when state == kDone.
  MiningResponse response;
  /// Seconds the job waited in the queue (Submit → leaving the queue).
  /// 0 while still queued.
  double queue_seconds = 0.0;
  /// Seconds the solve ran. 0 unless the job reached kRunning.
  double run_seconds = 0.0;
  /// 1-based position in the service-wide terminal order (0 while the job
  /// is still queued or running). Scheduler tests reconstruct dispatch
  /// interleavings from this.
  uint64_t finish_index = 0;

  bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// Per-tenant scheduling knobs (AddTenant).
struct TenantOptions {
  /// Weighted-fair share: each dispatched job advances the tenant's virtual
  /// clock by 1/weight, so at equal priority a weight-w tenant receives w×
  /// the dispatch share of a weight-1 tenant. Must be >= 1.
  uint32_t weight = 1;
  /// Per-tenant queue capacity; Submit fails with OutOfRange beyond it.
  /// 0 = inherit MiningServiceOptions::max_queued_jobs.
  size_t max_queued_jobs = 0;
};

/// \brief Per-tenant telemetry counters (tenant_stats). All values are
/// lifetime totals; wall-clock fields are telemetry only and never part of
/// the mined results.
struct TenantStats {
  /// Jobs accepted into the tenant's queue.
  uint64_t submitted = 0;
  /// Submit calls rejected by admission control (per-tenant backpressure or
  /// a service-wide budget).
  uint64_t admission_rejections = 0;
  /// Jobs the scheduler dispatched to the tenant's session — the per-tenant
  /// share telemetry.
  uint64_t dispatched = 0;
  uint64_t completed = 0;          ///< jobs that reached kDone
  uint64_t failed = 0;             ///< jobs that reached kFailed
  uint64_t cancelled = 0;          ///< jobs that reached kCancelled
  /// Subset of `failed` that carried StatusCode::kDeadlineExceeded — the
  /// deadline-miss telemetry.
  uint64_t deadline_exceeded = 0;
  /// Queue-wait telemetry over every job that left the queue (dispatched,
  /// cancelled or expired): total and worst-case seconds from Submit to
  /// leaving the queue.
  double total_queue_seconds = 0.0;
  double max_queue_seconds = 0.0;
  /// Total solve seconds across the tenant's dispatched jobs.
  double total_run_seconds = 0.0;
  /// The weighted-fair virtual clock (dispatches / weight, with idle
  /// catch-up); equal values across tenants mean the service honored the
  /// configured weights.
  double virtual_time = 0.0;
};

/// Service-level tuning.
struct MiningServiceOptions {
  /// Default per-tenant queue capacity (jobs not yet terminal, not
  /// running); Submit fails with OutOfRange beyond it — the per-queue
  /// backpressure signal. Overridable per tenant via
  /// TenantOptions::max_queued_jobs. 0 = unbounded.
  size_t max_queued_jobs = 0;
  /// Service-wide admission budget across all tenant queues: total queued
  /// jobs allowed; Submit fails with kResourceExhausted beyond it.
  /// 0 = unbounded.
  size_t max_total_queued_jobs = 0;
  /// Service-wide admission budget on the approximate bytes of queued
  /// requests (ApproxRequestBytes); Submit fails with kResourceExhausted
  /// when accepting the request would exceed it. 0 = unbounded.
  size_t max_queued_request_bytes = 0;
  /// Executor threads draining the tenant queues. Each runs at most one
  /// job (of distinct tenants) at a time; 1 (the default) serializes all
  /// tenants — the single-tenant behavior of earlier revisions. Clamped
  /// to >= 1.
  uint32_t num_executors = 1;
  /// Start with the scheduler paused: submissions queue up but nothing
  /// dispatches until Resume(). Lets tests and batch drivers stage a
  /// backlog and observe one deterministic scheduling order.
  bool start_paused = false;
  /// Terminal jobs retained for Poll/Wait, oldest-finished-first eviction;
  /// polling an evicted job returns NotFound. 0 = retain everything (only
  /// sensible for tests and short-lived batch drivers).
  size_t max_finished_jobs = 4096;
  /// Cross-session shared pipeline cache (api/pipeline_cache.h). When set,
  /// every tenant session is re-attached to it as it is registered, so
  /// tenants over the same dataset prepare each pipeline once. Null
  /// (default) keeps whatever cache each session came with — private unless
  /// the caller already attached a shared one via SessionOptions.
  std::shared_ptr<PipelineCache> shared_cache;
  /// Persistent artifact store (api/artifact_store.h). When set, every
  /// tenant session is attached to it as it is registered — warm-booting
  /// the pipeline cache from disk and writing built pipelines back
  /// asynchronously, so a restarted service answers its first jobs without
  /// rebuilding. Applied after `shared_cache`, so the warm boot hydrates
  /// the cache the service actually mines against. Null (default) keeps
  /// whatever store each session came with.
  std::shared_ptr<ArtifactStore> artifact_store;
  /// Shared worker pool attached to every tenant session
  /// (SessionOptions::worker_pool): N tenants then contend for one fixed
  /// set of solver threads instead of spawning N private pools. Null
  /// (default) leaves each session its private pool. Responses are
  /// bit-identical either way.
  std::shared_ptr<ThreadPool> worker_pool;
  /// Path of the crash-consistent job journal (api/job_journal.h). When
  /// non-empty, the service appends an Admitted record *before* Submit
  /// returns success (a failed append fails the Submit — acked implies
  /// journaled), a Started record at dispatch and a Done record at finish;
  /// on construction over an existing journal it *recovers*: Done jobs are
  /// re-exposed through Poll/Wait without re-running (exactly-once, with
  /// bit-identical response content), and incomplete jobs are resubmitted
  /// in original admission order per tenant as each tenant id is
  /// re-registered via AddTenant. Recovered jobs keep their original
  /// JobIds; deadline clocks restart at recovery. Empty (default) = no
  /// journal. If the journal cannot be opened, the constructor keeps the
  /// service alive but every Submit fails with the open error — durable
  /// admission is never silently dropped.
  std::string journal_path;
  /// Tuning of the journal opened for journal_path (durability mode, group
  /// commit interval, retry budget).
  JobJournalOptions journal_options;
};

/// \brief Asynchronous, multi-tenant mining facade over MinerSessions.
///
/// Submit/Poll/Wait/Cancel/ApplyUpdate are thread-safe and non-blocking
/// (Wait blocks only its caller). Destruction cancels every queued job,
/// fires the running jobs' tokens, joins the executors, and then blocks
/// until every Wait()/Drain() caller blocked inside the service has woken
/// and moved off the service's mutex and condition variables. A Wait()
/// caller may still be finishing its snapshot's response copy (from its own
/// pinned Job — safe) when the destructor returns, so join caller threads
/// before reading results they write. The guarantee covers only calls that
/// already entered the service's lock before destruction started; a call
/// still contending for entry — or begun afterwards — races the teardown
/// and is undefined behavior, as for any object, so callers needing that
/// must synchronize externally.
class MiningService {
 public:
  /// Starts a service with no tenants; register graph pairs via AddTenant.
  explicit MiningService(MiningServiceOptions options = {});

  /// Takes ownership of `session` as tenant 0 (weight 1). The session's own
  /// knobs (SessionOptions::max_parallelism, pipeline cache size) keep
  /// governing the solves; each job is granted the whole session thread
  /// budget.
  explicit MiningService(MinerSession session,
                         MiningServiceOptions options = {});
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  /// \brief Registers `session` as a new tenant and returns its dense id.
  ///
  /// The options' shared cache / artifact store / worker pool are attached
  /// to the session before it becomes schedulable. Fails on a zero weight
  /// (InvalidArgument) or after shutdown began (Cancelled).
  Result<TenantId> AddTenant(MinerSession session, TenantOptions options = {});

  /// \brief Enqueues `request` on `tenant`'s queue and returns its JobId
  /// immediately.
  ///
  /// The request is *not* validated here: validation failures surface
  /// through the job's kFailed state, exactly like solve-time failures, so
  /// callers have one place to look. Fails only on an unknown tenant
  /// (InvalidArgument), backpressure (OutOfRange — per-tenant queue full),
  /// an exceeded service-wide budget (kResourceExhausted, see
  /// MiningServiceOptions), or after shutdown began (Cancelled).
  ///
  /// Any caller-set `request.ga_solver.cancel` pointer is stripped: it
  /// could dangle before the job runs and would shadow the per-job token.
  /// Cancel(JobId) is the only way to abort a submitted job.
  Result<JobId> Submit(TenantId tenant, MiningRequest request);

  /// Tenant-0 convenience overload (the single-tenant shape).
  Result<JobId> Submit(MiningRequest request);

  /// \brief Queues a streaming weight update at `tenant`'s current fence
  /// position (see the file comment). Validated eagerly — a bad update is
  /// rejected here and never enters the queue. Fails with Cancelled after
  /// shutdown began.
  Status ApplyUpdate(TenantId tenant, UpdateSide side, VertexId u, VertexId v,
                     double delta);

  /// Tenant-0 convenience overload.
  Status ApplyUpdate(UpdateSide side, VertexId u, VertexId v, double delta);

  /// Non-blocking snapshot; NotFound for unknown (or evicted) ids.
  Result<JobStatus> Poll(JobId id) const;

  /// Blocks until the job is terminal, then returns the snapshot.
  Result<JobStatus> Wait(JobId id);

  /// \brief Requests cancellation and returns the job's snapshot.
  ///
  /// A queued job transitions to kCancelled immediately and never starts; a
  /// running job finishes cancelling asynchronously (the returned snapshot
  /// may still say kRunning — Wait for the terminal state). Cancelling a
  /// terminal job is a no-op that returns its snapshot.
  Result<JobStatus> Cancel(JobId id);

  /// Releases a scheduler started with
  /// MiningServiceOptions::start_paused; idempotent.
  void Resume();

  /// Blocks until every submitted job is terminal and all queued updates
  /// are applied, across all tenants. New work may be submitted
  /// concurrently; this returns once every queue is observed empty with no
  /// job running. A paused scheduler with a backlog never becomes idle —
  /// Resume() first.
  void Drain();

  /// Registered tenants (AddTenant calls plus the constructor session).
  size_t num_tenants() const;
  /// Per-tenant telemetry; InvalidArgument for an unknown id.
  Result<TenantStats> tenant_stats(TenantId tenant) const;
  /// Jobs submitted over the service's lifetime (all tenants).
  uint64_t num_submitted() const;
  /// Jobs currently queued or running (all tenants).
  size_t num_pending_jobs() const;
  /// Jobs that terminated kFailed with StatusCode::kDeadlineExceeded.
  uint64_t num_deadline_exceeded() const;
  /// Submit calls rejected by admission control (backpressure or budget),
  /// service-wide.
  uint64_t num_admission_rejections() const;
  /// Approximate bytes of currently queued requests — the admission
  /// controller's byte-budget gauge.
  size_t queued_request_bytes() const;
  /// \brief The deterministic per-request byte estimate the byte budget
  /// charges (struct size plus solver-name payloads). Exposed so callers
  /// (and the C ABI) can size max_queued_request_bytes meaningfully.
  static size_t ApproxRequestBytes(const MiningRequest& request);
  /// \brief The worst position on the graceful-degradation ladder
  /// (api/mining.h) across all tenant sessions, mirrored into the service
  /// after every executed job so callers never race the executors. A
  /// service that has not run a job yet reports kHealthy.
  HealthState health() const;
  /// Ladder transitions / store failure counters summed across tenants,
  /// mirrored like health().
  uint64_t num_health_transitions() const;
  uint64_t num_store_write_errors() const;
  uint64_t num_store_retries() const;
  /// Wait()/Drain() callers currently registered as blocked inside the
  /// service — the population the destructor drains. A caller observed here
  /// is covered by the teardown guarantee; the probe exists so tests can
  /// positively establish that instead of sleeping.
  size_t num_active_waiters() const;
  /// \brief Jobs recovered from the journal at construction (terminal jobs
  /// re-exposed plus incomplete jobs awaiting resubmission), in admission
  /// order — the recovered-job enumeration the C ABI exports. Empty when no
  /// journal (or a fresh one) was configured.
  std::vector<JobId> recovered_jobs() const;
  uint64_t num_recovered_jobs() const;
  /// Counters of the attached journal; NotFound when the service runs
  /// without one, or the journal's open error when it failed to open.
  Result<JobJournalStats> journal_stats() const;

 private:
  // One submitted job. Owned by jobs_ (and finished_order_) via shared_ptr
  // so a snapshot under the lock stays cheap and eviction is O(1).
  struct Job {
    JobId id = 0;
    TenantId tenant = 0;
    MiningRequest request;
    JobState state = JobState::kQueued;
    Status failure;
    MiningResponse response;
    CancelToken cancel;
    WallTimer since_submit;  // running from Submit
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    uint64_t finish_index = 0;
    // The byte-budget charge taken at admission, released when the job
    // leaves its queue.
    size_t approx_bytes = 0;
    // Deadline bookkeeping (request.deadline_seconds > 0 only). The
    // watchdog sets deadline_fired before firing `cancel`; the executor's
    // finish path uses it to map the resulting Cancelled status to kFailed
    // + kDeadlineExceeded. An explicit Cancel() sets user_cancelled, which
    // takes precedence — the caller asked first, so they see kCancelled
    // even if the deadline also fired.
    bool deadline_fired = false;
    bool user_cancelled = false;
  };

  // One queue entry, in fence order: either a job or a pre-validated
  // streaming update.
  struct QueuedOp {
    std::shared_ptr<Job> job;  // null for updates
    UpdateSide side = UpdateSide::kG1;
    VertexId u = 0;
    VertexId v = 0;
    double delta = 0.0;
  };

  // One registered tenant: its session, its FIFO queue and its scheduler
  // state. Stable address (held by unique_ptr) so executors can keep a
  // pointer across the unlocked solve window.
  struct Tenant {
    Tenant(TenantId id, MinerSession session, TenantOptions options)
        : id(id), session(std::move(session)), options(options) {}

    const TenantId id;
    MinerSession session;
    const TenantOptions options;
    std::deque<QueuedOp> queue;
    size_t num_queued_jobs = 0;  // kQueued jobs inside queue
    // An executor is working this tenant (applying its fenced updates or
    // running its one in-flight job). At most one executor per tenant keeps
    // the session single-threaded; the mutex handoff orders the accesses.
    bool busy = false;
    // Weighted-fair virtual clock; see the file comment.
    double vtime = 0.0;
    TenantStats stats;
    // Session health mirror, refreshed by the executor that ran the
    // tenant's latest job (see MiningService::health()).
    HealthState health = HealthState::kHealthy;
    uint64_t health_transitions = 0;
    uint64_t store_write_errors = 0;
    uint64_t store_retries = 0;
  };

  // RAII registration of a Wait()/Drain() caller about to block on
  // job_finished_. Constructed and destroyed with mutex_ held; the
  // destructor decrements and wakes ~MiningService even if the wait throws,
  // so the teardown drain can never be left hanging on a leaked count.
  class ScopedWaiter {
   public:
    explicit ScopedWaiter(MiningService* service) : service_(service) {
      ++service_->active_waiters_;
    }
    ~ScopedWaiter() {
      if (--service_->active_waiters_ == 0) {
        service_->waiters_done_.notify_all();
      }
    }
    ScopedWaiter(const ScopedWaiter&) = delete;
    ScopedWaiter& operator=(const ScopedWaiter&) = delete;

   private:
    MiningService* service_;
  };

  void ExecutorLoop();
  // Deadline enforcement thread: sleeps until the earliest pending
  // deadline, then expires it — a queued job goes kFailed immediately, a
  // running job gets its CancelToken fired (see Job::deadline_fired).
  void WatchdogLoop();
  // The scheduling decision: among tenants with runnable work and no
  // executor attached, the one with the highest head-job priority, ties to
  // the smallest vtime, then the lowest id. Null when nothing is runnable.
  // Mutex held.
  Tenant* PickTenantLocked();
  // Priority of the first live job entry in `tenant`'s queue (fenced
  // updates and stale entries ahead of it don't carry priority); INT64_MIN
  // for a queue holding only updates/stale entries — it still needs
  // draining, but never outranks a real job. Mutex held.
  int64_t HeadPriorityLocked(const Tenant& tenant) const;
  // Drains `tenant`'s leading fenced updates / stale entries and runs at
  // most one job, releasing the lock around session calls. Enters and
  // leaves with `lock` held; tenant->busy is set for the whole visit.
  void RunTenantOnce(std::unique_lock<std::mutex>* lock, Tenant* tenant);
  // Accounting for a job leaving kQueued (dispatch, cancel, expiry,
  // shutdown): queue/byte gauges and queue-wait telemetry. Mutex held.
  void LeaveQueueLocked(Tenant* tenant, Job* job);
  // True when every tenant queue is empty and no executor is busy — the
  // Drain condition. Mutex held.
  bool IdleLocked() const;
  // Smallest vtime among *other* tenants with work queued or in flight;
  // `fallback` when there is none. The idle catch-up bound of the fair
  // clock. Mutex held.
  double MinActiveVtimeLocked(const Tenant& except, double fallback) const;
  // Fails a still-queued job with kDeadlineExceeded. Mutex held.
  void ExpireQueuedLocked(const std::shared_ptr<Job>& job);
  // Marks `job` terminal, stamps its finish_index, bumps the per-tenant
  // terminal counters, journals the Done record, records the job for
  // retention/eviction and wakes waiters. Mutex held.
  void FinishLocked(const std::shared_ptr<Job>& job);
  // Constructor-time journal recovery: opens options_.journal_path, replays
  // it, re-exposes terminal jobs through jobs_ (without re-running them)
  // and buffers incomplete jobs per tenant until AddTenant registers their
  // tenant id. Runs before the executors start.
  void RecoverFromJournal();
  // Enqueues `tenant`'s buffered incomplete recovered jobs in admission
  // order — called by AddTenant right after registration, so recovered work
  // precedes anything the caller submits afterwards. Mutex held.
  void EnqueueRecoveredLocked(Tenant* tenant);
  // Appends `job`'s Done record (no-op without a journal; failures are
  // counted, never job-fatal) and stamps the journal telemetry counters
  // into a kDone job's response. Mutex held.
  void JournalDoneLocked(const std::shared_ptr<Job>& job);
  // Builds the caller's snapshot; enters with `lock` held and releases it
  // before the deep response copy (terminal jobs are immutable).
  JobStatus TakeSnapshot(std::unique_lock<std::mutex>* lock,
                         const std::shared_ptr<Job>& job) const;

  MiningServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable job_finished_;
  // Wakes the watchdog when a deadline-carrying job is submitted (its sleep
  // horizon may have moved up) and at shutdown.
  std::condition_variable deadline_work_;
  // Wakes the destructor once the last registered Wait()/Drain() caller has
  // left job_finished_.wait (see active_waiters_).
  std::condition_variable waiters_done_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  // Terminal jobs in finish order, for max_finished_jobs eviction.
  std::deque<JobId> finished_order_;
  // Non-terminal jobs with a deadline, watched by WatchdogLoop; entries are
  // pruned as they go terminal or fire.
  std::vector<std::shared_ptr<Job>> deadline_jobs_;
  JobId next_job_id_ = 1;
  // Crash-consistency journal (null when options_.journal_path is empty or
  // the open failed — see journal_error_).
  std::shared_ptr<JobJournal> journal_;
  // Why the configured journal is unavailable; Submit refuses while set so
  // durable admission is never silently dropped.
  Status journal_error_;
  // Service-wide admission sequence, journaled with every Admitted record;
  // resumes above the largest recovered index.
  uint64_t admission_seq_ = 0;
  // Jobs recovered at construction, in admission order (terminal re-exposed
  // plus incomplete pending), for recovered_jobs().
  std::vector<JobId> recovered_job_ids_;
  // Incomplete recovered jobs keyed by tenant id, awaiting their tenant's
  // AddTenant registration; drained in admission order.
  std::unordered_map<TenantId, std::vector<std::shared_ptr<Job>>>
      recovery_pending_;
  // Started/Done appends that failed (non-fatal, unlike Admitted appends).
  uint64_t journal_append_errors_ = 0;
  uint64_t num_submitted_ = 0;
  uint64_t num_deadline_exceeded_ = 0;
  uint64_t num_admission_rejections_ = 0;
  uint64_t finish_seq_ = 0;
  // Service health mirror aggregated over the per-tenant mirrors after
  // every executed job (see health() above).
  HealthState health_ = HealthState::kHealthy;
  size_t num_queued_jobs_ = 0;         // kQueued jobs across all queues
  size_t queued_request_bytes_ = 0;    // byte-budget gauge
  size_t num_running_jobs_ = 0;        // jobs inside an executor
  bool paused_ = false;
  bool stopping_ = false;
  // Wait()/Drain() calls currently blocked on job_finished_; the destructor
  // must not destroy mutex_/job_finished_ until this drops to zero.
  size_t active_waiters_ = 0;

  // Last members: all joined in ~MiningService before the rest tears down.
  std::vector<std::thread> executors_;
  std::thread watchdog_;
};

}  // namespace dcs

#endif  // DCS_API_MINING_SERVICE_H_
