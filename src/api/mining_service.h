// MiningService — the asynchronous submit/poll surface over a MinerSession.
//
// A MinerSession is single-threaded by design; under heavy multi-user
// traffic callers should not block on each other's solves. MiningService
// wraps one session behind a job queue: any thread Submit()s a
// MiningRequest and gets a JobId back immediately, then Poll()s or Wait()s
// for the JobStatus as it walks the queued → running → done/failed/
// cancelled state machine. One executor thread drains the queue in strict
// submission order against the session — each job's solve still fans out
// across the session's shared util/thread_pool via NewSEA seed sharding, so
// a single service saturates the machine while keeping results
// deterministic.
//
// Ordering & fencing. Streaming updates submitted through
// MiningService::ApplyUpdate are *fenced*: an update takes effect after
// every job submitted before it and before every job submitted after it.
// Each job therefore sees exactly the graph snapshot it would have seen
// mining synchronously at its submission point, and a finished job's
// response is bit-identical to a fresh MinerSession::Mine of the same
// request against that snapshot (the determinism guarantee the stress tests
// enforce).
//
// Cancellation is cooperative: Cancel() on a queued job guarantees it never
// starts; on a running job it fires the CancelToken that
// MinerSession::Solve threads into the NewSEA seed-shard loop, which aborts
// between seed chunks with no partial result — the session stays reusable
// and resubmitting the identical request yields the exact uncancelled
// answer.

#ifndef DCS_API_MINING_SERVICE_H_
#define DCS_API_MINING_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/timer.h"

namespace dcs {

/// Opaque handle of one submitted job; unique within a service.
using JobId = uint64_t;

/// The job lifecycle: kQueued → kRunning → one of the terminal states
/// (kDone / kFailed / kCancelled). A queued job may also go straight to
/// kCancelled without ever running. A job whose
/// MiningRequest::deadline_seconds elapses lands in kFailed carrying
/// StatusCode::kDeadlineExceeded — kCancelled is reserved for explicit
/// Cancel() calls and shutdown.
enum class JobState : uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

/// "queued", "running", "done", "failed" or "cancelled".
const char* JobStateToString(JobState state);

/// \brief Point-in-time snapshot of one job, returned by Poll/Wait/Cancel.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// Failure detail when state == kFailed (the solver's Status, e.g. a
  /// NotFound for an unregistered solver name); OK otherwise.
  Status failure;
  /// The mined response — subgraphs plus per-job MiningTelemetry. Filled
  /// only when state == kDone.
  MiningResponse response;
  /// Seconds the job waited in the queue (Submit → leaving the queue).
  /// 0 while still queued.
  double queue_seconds = 0.0;
  /// Seconds the solve ran. 0 unless the job reached kRunning.
  double run_seconds = 0.0;

  bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// Service-level tuning.
struct MiningServiceOptions {
  /// Jobs allowed to sit in the queue (not yet terminal, not running);
  /// Submit fails with OutOfRange beyond it — the backpressure signal.
  /// 0 = unbounded.
  size_t max_queued_jobs = 0;
  /// Terminal jobs retained for Poll/Wait, oldest-finished-first eviction;
  /// polling an evicted job returns NotFound. 0 = retain everything (only
  /// sensible for tests and short-lived batch drivers).
  size_t max_finished_jobs = 4096;
  /// Cross-session shared pipeline cache (api/pipeline_cache.h). When set,
  /// the owned session is re-attached to it before the executor starts, so
  /// N services over the same dataset prepare each pipeline once. Null
  /// (default) keeps whatever cache the session came with — private unless
  /// the caller already attached a shared one via SessionOptions.
  std::shared_ptr<PipelineCache> shared_cache;
  /// Persistent artifact store (api/artifact_store.h). When set, the owned
  /// session is attached to it before the executor starts — warm-booting
  /// the pipeline cache from disk and writing built pipelines back
  /// asynchronously, so a restarted service answers its first jobs without
  /// rebuilding. Applied after `shared_cache`, so the warm boot hydrates
  /// the cache the service actually mines against. Null (default) keeps
  /// whatever store the session came with.
  std::shared_ptr<ArtifactStore> artifact_store;
};

/// \brief Asynchronous mining facade over one MinerSession.
///
/// Submit/Poll/Wait/Cancel/ApplyUpdate are thread-safe and non-blocking
/// (Wait blocks only its caller). Destruction cancels every queued job,
/// fires the running job's token, joins the executor, and then blocks until
/// every Wait()/Drain() caller blocked inside the service has woken and
/// moved off the service's mutex and condition variables. A Wait() caller
/// may still be finishing its snapshot's response copy (from its own
/// pinned Job — safe) when the destructor returns, so join caller threads
/// before reading results they write. The guarantee covers only calls that
/// already entered the service's lock before destruction started; a call
/// still contending for entry — or begun afterwards — races the teardown
/// and is undefined behavior, as for any object, so callers needing that
/// must synchronize externally.
class MiningService {
 public:
  /// Takes ownership of `session`. The session's own knobs
  /// (SessionOptions::max_parallelism, pipeline cache size) keep governing
  /// the solves; each job is granted the whole session thread budget.
  explicit MiningService(MinerSession session,
                         MiningServiceOptions options = {});
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  /// \brief Enqueues `request` and returns its JobId immediately.
  ///
  /// The request is *not* validated here: validation failures surface
  /// through the job's kFailed state, exactly like solve-time failures, so
  /// callers have one place to look. Fails only on backpressure
  /// (OutOfRange, see MiningServiceOptions::max_queued_jobs) or after
  /// shutdown began (Cancelled).
  ///
  /// Any caller-set `request.ga_solver.cancel` pointer is stripped: it
  /// could dangle before the job runs and would shadow the per-job token.
  /// Cancel(JobId) is the only way to abort a submitted job.
  Result<JobId> Submit(MiningRequest request);

  /// \brief Queues a streaming weight update at the current fence position
  /// (see the file comment). Validated eagerly — a bad update is rejected
  /// here and never enters the queue. Fails with Cancelled after shutdown
  /// began.
  Status ApplyUpdate(UpdateSide side, VertexId u, VertexId v, double delta);

  /// Non-blocking snapshot; NotFound for unknown (or evicted) ids.
  Result<JobStatus> Poll(JobId id) const;

  /// Blocks until the job is terminal, then returns the snapshot.
  Result<JobStatus> Wait(JobId id);

  /// \brief Requests cancellation and returns the job's snapshot.
  ///
  /// A queued job transitions to kCancelled immediately and never starts; a
  /// running job finishes cancelling asynchronously (the returned snapshot
  /// may still say kRunning — Wait for the terminal state). Cancelling a
  /// terminal job is a no-op that returns its snapshot.
  Result<JobStatus> Cancel(JobId id);

  /// Blocks until every submitted job is terminal and all queued updates
  /// are applied. New work may be submitted concurrently; this returns once
  /// the queue is observed empty with no job running.
  void Drain();

  /// Jobs submitted over the service's lifetime.
  uint64_t num_submitted() const;
  /// Jobs currently queued or running.
  size_t num_pending_jobs() const;
  /// Jobs that terminated kFailed with StatusCode::kDeadlineExceeded.
  uint64_t num_deadline_exceeded() const;
  /// \brief The owned session's position on the graceful-degradation ladder
  /// (api/mining.h), mirrored into the service after every executed job so
  /// callers never race the executor for the session. A service that has
  /// not run a job yet reports kHealthy.
  HealthState health() const;
  /// Ladder transitions / store failure counters, mirrored like health().
  uint64_t num_health_transitions() const;
  uint64_t num_store_write_errors() const;
  uint64_t num_store_retries() const;
  /// Wait()/Drain() callers currently registered as blocked inside the
  /// service — the population the destructor drains. A caller observed here
  /// is covered by the teardown guarantee; the probe exists so tests can
  /// positively establish that instead of sleeping.
  size_t num_active_waiters() const;

 private:
  // One submitted job. Owned by jobs_ (and finished_order_) via shared_ptr
  // so a snapshot under the lock stays cheap and eviction is O(1).
  struct Job {
    JobId id = 0;
    MiningRequest request;
    JobState state = JobState::kQueued;
    Status failure;
    MiningResponse response;
    CancelToken cancel;
    WallTimer since_submit;  // running from Submit
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    // Deadline bookkeeping (request.deadline_seconds > 0 only). The
    // watchdog sets deadline_fired before firing `cancel`; the executor's
    // finish path uses it to map the resulting Cancelled status to kFailed
    // + kDeadlineExceeded. An explicit Cancel() sets user_cancelled, which
    // takes precedence — the caller asked first, so they see kCancelled
    // even if the deadline also fired.
    bool deadline_fired = false;
    bool user_cancelled = false;
  };

  // One queue entry, in fence order: either a job or a pre-validated
  // streaming update.
  struct QueuedOp {
    std::shared_ptr<Job> job;  // null for updates
    UpdateSide side = UpdateSide::kG1;
    VertexId u = 0;
    VertexId v = 0;
    double delta = 0.0;
  };

  // RAII registration of a Wait()/Drain() caller about to block on
  // job_finished_. Constructed and destroyed with mutex_ held; the
  // destructor decrements and wakes ~MiningService even if the wait throws,
  // so the teardown drain can never be left hanging on a leaked count.
  class ScopedWaiter {
   public:
    explicit ScopedWaiter(MiningService* service) : service_(service) {
      ++service_->active_waiters_;
    }
    ~ScopedWaiter() {
      if (--service_->active_waiters_ == 0) {
        service_->waiters_done_.notify_all();
      }
    }
    ScopedWaiter(const ScopedWaiter&) = delete;
    ScopedWaiter& operator=(const ScopedWaiter&) = delete;

   private:
    MiningService* service_;
  };

  void ExecutorLoop();
  // Deadline enforcement thread: sleeps until the earliest pending
  // deadline, then expires it — a queued job goes kFailed immediately, a
  // running job gets its CancelToken fired (see Job::deadline_fired).
  void WatchdogLoop();
  // Fails a still-queued job with kDeadlineExceeded. Mutex held.
  void ExpireQueuedLocked(const std::shared_ptr<Job>& job);
  // Marks `job` terminal, records it for retention/eviction and wakes
  // waiters. Mutex held.
  void FinishLocked(const std::shared_ptr<Job>& job);
  // Builds the caller's snapshot; enters with `lock` held and releases it
  // before the deep response copy (terminal jobs are immutable).
  JobStatus TakeSnapshot(std::unique_lock<std::mutex>* lock,
                         const std::shared_ptr<Job>& job) const;

  MinerSession session_;
  MiningServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable job_finished_;
  // Wakes the watchdog when a deadline-carrying job is submitted (its sleep
  // horizon may have moved up) and at shutdown.
  std::condition_variable deadline_work_;
  // Wakes the destructor once the last registered Wait()/Drain() caller has
  // left job_finished_.wait (see active_waiters_).
  std::condition_variable waiters_done_;
  std::deque<QueuedOp> queue_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  // Terminal jobs in finish order, for max_finished_jobs eviction.
  std::deque<JobId> finished_order_;
  // Non-terminal jobs with a deadline, watched by WatchdogLoop; entries are
  // pruned as they go terminal or fire.
  std::vector<std::shared_ptr<Job>> deadline_jobs_;
  JobId next_job_id_ = 1;
  uint64_t num_submitted_ = 0;
  uint64_t num_deadline_exceeded_ = 0;
  // Session health mirror, refreshed by the executor after every job (see
  // health() above).
  HealthState health_ = HealthState::kHealthy;
  uint64_t health_transitions_ = 0;
  uint64_t store_write_errors_ = 0;
  uint64_t store_retries_ = 0;
  size_t num_queued_jobs_ = 0;  // kQueued jobs inside queue_
  bool running_job_ = false;
  bool executor_busy_ = false;  // applying an update outside the lock
  bool stopping_ = false;
  // Wait()/Drain() calls currently blocked on job_finished_; the destructor
  // must not destroy mutex_/job_finished_ until this drops to zero.
  size_t active_waiters_ = 0;

  // Last members: both joined in ~MiningService before the rest tears down.
  std::thread executor_;
  std::thread watchdog_;
};

}  // namespace dcs

#endif  // DCS_API_MINING_SERVICE_H_
