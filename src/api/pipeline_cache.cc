#include "api/pipeline_cache.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "util/fault_injection.h"
#include "util/hash.h"

namespace dcs {

namespace {

// Bit-pattern double equality, the comparison PipelineCacheKey uses so that
// equality and Hash agree on every input: NaN fields compare equal to
// themselves (no unmatchable keys duplicating entries), and -0.0 != 0.0
// (they hash apart). Value semantics would break the unordered_map
// invariant that equal keys hash equally.
bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool BitEqual(const std::optional<double>& a, const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || BitEqual(*a, *b);
}

}  // namespace

uint64_t PipelineCacheKey::Hash() const {
  uint64_t h = MixFingerprint(0x6463735f706970ull,  // "dcs_pip"
                              graph_fingerprint);
  h = MixFingerprintDouble(h, alpha);
  h = MixFingerprint(h, flip ? 1 : 0);
  if (discretize) {
    h = MixFingerprintDouble(h, discretize->strong_pos);
    h = MixFingerprintDouble(h, discretize->weak_pos);
    h = MixFingerprintDouble(h, discretize->strong_neg);
    h = MixFingerprintDouble(h, discretize->level_two);
    h = MixFingerprintDouble(h, discretize->level_one);
  } else {
    h = MixFingerprint(h, 2);
  }
  h = clamp_weights_above ? MixFingerprintDouble(h, *clamp_weights_above)
                          : MixFingerprint(h, 3);
  return h;
}

bool operator==(const PipelineCacheKey& a, const PipelineCacheKey& b) {
  if (a.graph_fingerprint != b.graph_fingerprint || a.flip != b.flip ||
      !BitEqual(a.alpha, b.alpha) ||
      !BitEqual(a.clamp_weights_above, b.clamp_weights_above) ||
      a.discretize.has_value() != b.discretize.has_value()) {
    return false;
  }
  if (!a.discretize.has_value()) return true;
  const DiscretizeSpec& da = *a.discretize;
  const DiscretizeSpec& db = *b.discretize;
  return BitEqual(da.strong_pos, db.strong_pos) &&
         BitEqual(da.weak_pos, db.weak_pos) &&
         BitEqual(da.strong_neg, db.strong_neg) &&
         BitEqual(da.level_two, db.level_two) &&
         BitEqual(da.level_one, db.level_one);
}

uint64_t PipelineGraphFingerprintFromParts(uint64_t g1_fingerprint,
                                           uint64_t g2_fingerprint) {
  // Two chained steps, not one: MixFingerprint(h, v) adds h and v before
  // mixing, so a single step would make the pair fingerprint symmetric and
  // collide (G1, G2) with (G2, G1) — the flip direction must distinguish.
  const uint64_t h = MixFingerprint(0x6463735f70616972ull,  // "dcs_pair"
                                    g1_fingerprint);
  return MixFingerprint(h, g2_fingerprint);
}

uint64_t PipelineGraphFingerprint(const Graph& g1, const Graph& g2) {
  return PipelineGraphFingerprintFromParts(g1.ContentFingerprint(),
                                           g2.ContentFingerprint());
}

size_t PreparedPipeline::ApproxBytes() const {
  return sizeof(PreparedPipeline) + difference.ApproxBytes() +
         positive_part.ApproxBytes() +
         smart_bounds.w.capacity() * sizeof(double) +
         smart_bounds.tau.capacity() * sizeof(uint32_t) +
         smart_bounds.mu.capacity() * sizeof(double) +
         smart_bounds.max_incident.capacity() * sizeof(double) +
         smart_bounds.order.capacity() * sizeof(VertexId);
}

PipelineCache::PipelineCache(PipelineCacheOptions options)
    : options_(options) {}

Result<PipelineCache::Snapshot> PipelineCache::GetOrPrepare(
    const PipelineCacheKey& key, bool need_ga, const BuildFn& build,
    bool* reused_difference) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = entries_.find(key);
    if (it != entries_.end() &&
        (!need_ga || it->second.prepared->has_ga_artifacts)) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++hits_;
      *reused_difference = true;
      return it->second.prepared;
    }
    if (building_.count(key) != 0) {
      // Another session is preparing this key (or upgrading it); block until
      // it publishes, then re-check — the common path turns into a hit.
      build_done_.wait(lock);
      continue;
    }

    // Become the key's single builder. The snapshot (not the entry) is
    // pinned across the unlocked build, so concurrent eviction of the
    // upgrade source is harmless.
    Snapshot reuse = it != entries_.end() ? it->second.prepared : nullptr;
    building_.insert(key);
    lock.unlock();
    // Demote build exceptions to the Status contract: an escaping exception
    // would skip the building_.erase below and deadlock every later caller
    // of this key (libdcs is exception-free, but bad_alloc and user build
    // fns are not).
    Result<PreparedPipeline> built = [&]() -> Result<PreparedPipeline> {
      try {
        // The cache.build fault site: an armed fault fails this build the
        // same way a failing BuildFn would — the status propagates to the
        // caller and racing waiters retry. Zero-overhead disarmed.
        if (FaultHit(fault_sites::kCacheBuild)) {
          return FaultInjection::InjectedError(fault_sites::kCacheBuild);
        }
        return build(reuse.get());
      } catch (const std::exception& e) {
        return Status::Internal(std::string("pipeline build threw: ") +
                                e.what());
      } catch (...) {
        return Status::Internal("pipeline build threw a non-std exception");
      }
    }();
    lock.lock();
    building_.erase(key);
    // Wake racing waiters; on failure they retry the build themselves (each
    // caller owns its session's graphs, so a retry is self-contained).
    build_done_.notify_all();
    if (!built.ok()) return built.status();
    if (reuse != nullptr) {
      ++upgrades_;
      *reused_difference = true;
    } else {
      ++misses_;
      *reused_difference = false;
    }
    auto snapshot = std::make_shared<const PreparedPipeline>(
        std::move(built).value());
    InsertLocked(key, snapshot);
    return snapshot;
  }
}

void PipelineCache::InsertLocked(const PipelineCacheKey& key,
                                 Snapshot snapshot) {
  const size_t bytes = snapshot->ApproxBytes();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Upgrade: replace in place, refresh recency. Holders of the old
    // snapshot keep it alive on their own.
    bytes_ -= it->second.bytes;
    it->second.prepared = std::move(snapshot);
    it->second.bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(snapshot), bytes, lru_.begin()});
  }
  bytes_ += bytes;

  // LRU + byte-budget eviction. May reclaim the entry just inserted when it
  // alone exceeds the byte budget — the caller's snapshot stays valid.
  while (!lru_.empty() &&
         ((options_.max_entries != 0 && entries_.size() > options_.max_entries) ||
          (options_.max_bytes != 0 && bytes_ > options_.max_bytes))) {
    EvictLocked(entries_.find(lru_.back()), /*count_eviction=*/true);
  }
}

void PipelineCache::EvictLocked(
    std::unordered_map<PipelineCacheKey, Entry, KeyHash>::iterator it,
    bool count_eviction) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  if (count_eviction) ++evictions_;
}

void PipelineCache::Publish(const PipelineCacheKey& key, Snapshot snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++republishes_;
  InsertLocked(key, std::move(snapshot));
}

std::vector<std::pair<PipelineCacheKey, PipelineCache::Snapshot>>
PipelineCache::SnapshotsFor(uint64_t graph_fingerprint) const {
  std::vector<std::pair<PipelineCacheKey, Snapshot>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, entry] : entries_) {
      if (key.graph_fingerprint == graph_fingerprint) {
        out.emplace_back(key, entry.prepared);
      }
    }
  }
  // Deterministic order (by the platform-stable key hash), so a republish
  // walk inserts into the LRU list identically everywhere — hash-map
  // iteration order must not leak into eviction behavior.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first.Hash() < b.first.Hash();
  });
  return out;
}

void PipelineCache::EraseFingerprint(uint64_t graph_fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    if (it->first.graph_fingerprint == graph_fingerprint) {
      EvictLocked(it, /*count_eviction=*/false);
    }
    it = next;
  }
}

void PipelineCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

size_t PipelineCache::EntriesFor(uint64_t graph_fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    count += key.graph_fingerprint == graph_fingerprint ? 1 : 0;
  }
  return count;
}

PipelineCacheStats PipelineCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PipelineCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.upgrades = upgrades_;
  stats.republishes = republishes_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace dcs
