#include "api/mining_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "util/logging.h"

namespace dcs {

namespace {

// Only positive finite deadlines are enforced. Anything else either means
// "no deadline" (0) or is an invalid request — which Submit intentionally
// does not reject; it surfaces through the job's kFailed state when
// MinerSession::Mine validates it.
bool HasDeadline(const MiningRequest& request) {
  return std::isfinite(request.deadline_seconds) &&
         request.deadline_seconds > 0.0;
}

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

MiningService::MiningService(MinerSession session,
                             MiningServiceOptions options)
    : session_(std::move(session)), options_(options) {
  // Attach before the executor exists — no solve can be in flight yet.
  // Cache first, store second: the warm boot must hydrate the cache the
  // service actually mines against.
  if (options_.shared_cache != nullptr) {
    session_.UsePipelineCache(options_.shared_cache);
  }
  if (options_.artifact_store != nullptr) {
    session_.UseArtifactStore(options_.artifact_store);
  }
  executor_ = std::thread([this] { ExecutorLoop(); });
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

MiningService::~MiningService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Every queued job dies terminally cancelled; unapplied updates are
    // dropped with the session (shutdown abandons the stream).
    for (QueuedOp& op : queue_) {
      if (op.job != nullptr && op.job->state == JobState::kQueued) {
        op.job->state = JobState::kCancelled;
        op.job->queue_seconds = op.job->since_submit.Seconds();
        FinishLocked(op.job);
      }
    }
    queue_.clear();
    num_queued_jobs_ = 0;
    // The in-flight job (if any) is asked to stop; the executor observes
    // the token between seed chunks and records the terminal state before
    // exiting.
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) job->cancel.Cancel();
    }
  }
  work_available_.notify_all();
  job_finished_.notify_all();
  deadline_work_.notify_all();
  executor_.join();
  watchdog_.join();
  // Every job is terminal now, so all Wait()ers are waking up. Let them get
  // back out of job_finished_.wait and off mutex_ before either is
  // destroyed; TakeSnapshot's unlocked response copy is safe afterwards
  // because each waiter pinned its Job with a local shared_ptr.
  std::unique_lock<std::mutex> lock(mutex_);
  waiters_done_.wait(lock, [this] { return active_waiters_ == 0; });
}

Result<JobId> MiningService::Submit(MiningRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::Cancelled("mining service is shutting down");
  }
  if (options_.max_queued_jobs != 0 &&
      num_queued_jobs_ >= options_.max_queued_jobs) {
    return Status::OutOfRange(
        "job queue full (" + std::to_string(num_queued_jobs_) +
        " queued); retry after draining");
  }
  auto job = std::make_shared<Job>();
  job->id = next_job_id_++;
  job->request = std::move(request);
  // The service owns cancellation for queued work: a caller-embedded
  // DcsgaOptions::cancel pointer could dangle before the executor runs the
  // job and would shadow the per-job token (making Cancel(id) a silent
  // no-op for the seed loop), so it is stripped — Cancel(JobId) is the one
  // cancellation path.
  job->request.ga_solver.cancel = nullptr;
  jobs_.emplace(job->id, job);
  queue_.push_back(QueuedOp{job});
  ++num_queued_jobs_;
  ++num_submitted_;
  if (HasDeadline(job->request)) {
    // Register with the watchdog; waking it re-derives the sleep horizon,
    // which this job may have moved up.
    deadline_jobs_.push_back(job);
    deadline_work_.notify_one();
  }
  work_available_.notify_one();
  return job->id;
}

Status MiningService::ApplyUpdate(UpdateSide side, VertexId u, VertexId v,
                                  double delta) {
  // Eager validation (against the fixed vertex universe) keeps the deferred
  // apply infallible, so a bad update is reported to its submitter instead
  // of poisoning the queue.
  DCS_RETURN_NOT_OK(
      MinerSession::ValidateUpdate(session_.num_vertices(), u, v, delta));
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::Cancelled("mining service is shutting down");
  }
  QueuedOp op;
  op.side = side;
  op.u = u;
  op.v = v;
  op.delta = delta;
  queue_.push_back(std::move(op));
  work_available_.notify_one();
  return Status::OK();
}

// Fills the cheap JobStatus fields under the lock, then releases it for the
// deep MiningResponse copy: a kDone job is terminal and never mutated again,
// so copying its (potentially large) response outside the mutex is safe and
// keeps pollers from stalling Submit and the executor's finish path.
JobStatus MiningService::TakeSnapshot(std::unique_lock<std::mutex>* lock,
                                      const std::shared_ptr<Job>& job) const {
  JobStatus status;
  status.id = job->id;
  status.state = job->state;
  status.failure = job->failure;
  status.queue_seconds = job->queue_seconds;
  status.run_seconds = job->run_seconds;
  lock->unlock();
  if (status.state == JobState::kDone) status.response = job->response;
  return status;
}

Result<JobStatus> MiningService::Poll(JobId id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown (or evicted) job id " +
                            std::to_string(id));
  }
  // Pin the job before TakeSnapshot drops the lock: jobs_ is the sole
  // long-term owner, and a concurrent finish can evict this entry (and with
  // it the Job) while the unlocked response copy is in flight.
  std::shared_ptr<Job> job = it->second;
  return TakeSnapshot(&lock, job);
}

Result<JobStatus> MiningService::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown (or evicted) job id " +
                            std::to_string(id));
  }
  // Hold the job alive across the wait: eviction only erases the map entry.
  std::shared_ptr<Job> job = it->second;
  // Registered waiters block destruction: ~MiningService may not tear down
  // mutex_/job_finished_ while we sleep on them.
  {
    ScopedWaiter waiter(this);
    job_finished_.wait(lock, [&job] {
      const JobState s = job->state;
      return s == JobState::kDone || s == JobState::kFailed ||
             s == JobState::kCancelled;
    });
  }
  return TakeSnapshot(&lock, job);
}

Result<JobStatus> MiningService::Cancel(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown (or evicted) job id " +
                            std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  // Explicit cancellation wins over a racing deadline: the caller asked
  // first, so the terminal state is kCancelled even if the watchdog also
  // fired this job's token (see Job::user_cancelled).
  job->user_cancelled = true;
  job->cancel.Cancel();
  if (job->state == JobState::kQueued) {
    // Terminal immediately: the executor skips the stale queue entry, so a
    // cancelled queued job is guaranteed to never start.
    job->state = JobState::kCancelled;
    job->queue_seconds = job->since_submit.Seconds();
    DCS_CHECK(num_queued_jobs_ > 0);
    --num_queued_jobs_;
    FinishLocked(job);
  }
  // A running job finishes cancelling asynchronously; terminal jobs no-op.
  return TakeSnapshot(&lock, job);
}

void MiningService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Same registration as Wait(): the destructor must not tear down
  // mutex_/job_finished_ while a drainer sleeps on them.
  ScopedWaiter waiter(this);
  job_finished_.wait(lock, [this] {
    return (queue_.empty() && !running_job_ && !executor_busy_) || stopping_;
  });
}

uint64_t MiningService::num_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_submitted_;
}

size_t MiningService::num_pending_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_queued_jobs_ + (running_job_ ? 1 : 0);
}

size_t MiningService::num_active_waiters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_waiters_;
}

uint64_t MiningService::num_deadline_exceeded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_deadline_exceeded_;
}

HealthState MiningService::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

uint64_t MiningService::num_health_transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_transitions_;
}

uint64_t MiningService::num_store_write_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_write_errors_;
}

uint64_t MiningService::num_store_retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_retries_;
}

void MiningService::ExpireQueuedLocked(const std::shared_ptr<Job>& job) {
  DCS_CHECK(job->state == JobState::kQueued);
  job->queue_seconds = job->since_submit.Seconds();
  DCS_CHECK(num_queued_jobs_ > 0);
  --num_queued_jobs_;
  job->state = JobState::kFailed;
  job->failure = Status::DeadlineExceeded(
      "deadline of " + std::to_string(job->request.deadline_seconds) +
      "s elapsed before the job left the queue");
  ++num_deadline_exceeded_;
  FinishLocked(job);
}

void MiningService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    // One pass over the watched jobs: prune terminal entries, expire
    // overdue ones, and derive the next sleep horizon from the rest.
    double earliest = 0.0;
    bool have_pending = false;
    for (auto it = deadline_jobs_.begin(); it != deadline_jobs_.end();) {
      const std::shared_ptr<Job>& job = *it;
      const JobState state = job->state;
      if (state != JobState::kQueued && state != JobState::kRunning) {
        it = deadline_jobs_.erase(it);
        continue;
      }
      const double remaining =
          job->request.deadline_seconds - job->since_submit.Seconds();
      if (remaining > 0.0) {
        earliest = have_pending ? std::min(earliest, remaining) : remaining;
        have_pending = true;
        ++it;
        continue;
      }
      if (state == JobState::kQueued) {
        // Guaranteed to never start: the executor skips the stale queue_
        // entry exactly like a cancelled-while-queued job's.
        ExpireQueuedLocked(job);
      } else {
        // Running: fire the per-job token. The solve aborts between seed
        // chunks with no partial result, and the executor's finish path
        // maps the Cancelled status to kFailed + kDeadlineExceeded. If the
        // solve completes before observing the token, the job stays kDone
        // with its full (bit-identical) result — the deadline is a latency
        // bound, not a result invalidator.
        job->deadline_fired = true;
        job->cancel.Cancel();
      }
      it = deadline_jobs_.erase(it);
    }
    if (stopping_) return;
    if (!have_pending) {
      deadline_work_.wait(lock);  // re-derives on submit/shutdown wakeups
    } else {
      deadline_work_.wait_for(lock, std::chrono::duration<double>(earliest));
    }
  }
}

void MiningService::FinishLocked(const std::shared_ptr<Job>& job) {
  finished_order_.push_back(job->id);
  if (options_.max_finished_jobs != 0) {
    while (finished_order_.size() > options_.max_finished_jobs) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
  }
  job_finished_.notify_all();
}

void MiningService::ExecutorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    QueuedOp op = std::move(queue_.front());
    queue_.pop_front();

    if (op.job == nullptr) {
      // Fenced streaming update: applied strictly after the jobs submitted
      // before it, strictly before those submitted after. Pre-validated, so
      // a failure here is a library bug. executor_busy_ keeps Drain from
      // returning inside the unlocked apply window.
      executor_busy_ = true;
      lock.unlock();
      const Status applied =
          session_.ApplyUpdate(op.side, op.u, op.v, op.delta);
      DCS_CHECK(applied.ok()) << applied.ToString();
      lock.lock();
      executor_busy_ = false;
      if (queue_.empty()) job_finished_.notify_all();  // Drain watches this
      continue;
    }

    std::shared_ptr<Job> job = std::move(op.job);
    if (job->state != JobState::kQueued) {
      // Cancelled (or deadline-expired) while queued: the job went terminal
      // under Cancel() or the watchdog; this is just its stale queue entry.
      // Draining it may empty the queue, so wake Drain() here too — its
      // notify at finish time saw a non-empty queue.
      if (queue_.empty()) job_finished_.notify_all();
      continue;
    }
    if (HasDeadline(job->request) &&
        job->since_submit.Seconds() >= job->request.deadline_seconds) {
      // Dequeue-time expiry check: with a deadline shorter than the
      // watchdog's wakeup latency the job must still fail deterministically
      // instead of racing into a solve.
      ExpireQueuedLocked(job);
      if (queue_.empty()) job_finished_.notify_all();
      continue;
    }
    job->state = JobState::kRunning;
    job->queue_seconds = job->since_submit.Seconds();
    DCS_CHECK(num_queued_jobs_ > 0);
    --num_queued_jobs_;
    running_job_ = true;

    lock.unlock();
    WallTimer run_timer;
    // Demote solver exceptions to the Status contract (libdcs is
    // exception-free, registered solvers need not be): an escape here would
    // std::terminate the executor thread and take every queued job with it.
    Result<MiningResponse> mined = Status::Internal("not mined");
    try {
      mined = session_.Mine(job->request, &job->cancel);
    } catch (const std::exception& e) {
      mined = Status::Internal(std::string("solver threw: ") + e.what());
    } catch (...) {
      mined = Status::Internal("solver threw a non-std exception");
    }
    const double run_seconds = run_timer.Seconds();
    // Ladder step on the executor thread (the session's only user once the
    // service owns it), so the mirror below reflects write-back failures as
    // soon as the store reported them — not one job late.
    session_.RefreshHealth();
    lock.lock();

    running_job_ = false;
    health_ = session_.health();
    health_transitions_ = session_.num_health_transitions();
    store_write_errors_ = session_.num_store_write_errors();
    store_retries_ = session_.num_store_retries();
    job->run_seconds = run_seconds;
    if (mined.ok()) {
      job->state = JobState::kDone;
      job->response = std::move(*mined);
    } else if (mined.status().IsCancelled()) {
      if (job->deadline_fired && !job->user_cancelled) {
        // The watchdog — not a caller — stopped this solve: surface it as
        // the failure it is, carrying kDeadlineExceeded, with no partial
        // result. The session stays reusable for the next queued job.
        job->state = JobState::kFailed;
        job->failure = Status::DeadlineExceeded(
            "deadline of " + std::to_string(job->request.deadline_seconds) +
            "s exceeded while running");
        ++num_deadline_exceeded_;
      } else {
        job->state = JobState::kCancelled;
      }
    } else {
      // Failure propagation: a bad measure/solver id or invalid request
      // becomes a terminal failed job carrying the solver's status — the
      // service itself never crashes and keeps draining the queue.
      job->state = JobState::kFailed;
      job->failure = mined.status();
    }
    FinishLocked(job);
  }
}

}  // namespace dcs
