#include "api/mining_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "util/logging.h"

namespace dcs {

namespace {

// Only positive finite deadlines are enforced. Anything else either means
// "no deadline" (0) or is an invalid request — which Submit intentionally
// does not reject; it surfaces through the job's kFailed state when
// MinerSession::Mine validates it.
bool HasDeadline(const MiningRequest& request) {
  return std::isfinite(request.deadline_seconds) &&
         request.deadline_seconds > 0.0;
}

// The degradation ladder is ordered kHealthy < kDegraded < kStoreOffline;
// the service-level mirror reports the worst rung across tenants.
HealthState WorseOf(HealthState a, HealthState b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

// Reconstructs a recovered job's failure Status from its journaled integer
// code. Codes outside the enum (written by a future format revision) demote
// to kInternal instead of fabricating an out-of-range enum value.
Status StatusFromJournal(uint32_t code, const std::string& message) {
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
    return Status(StatusCode::kInternal, message);
  }
  return Status(static_cast<StatusCode>(code), message);
}

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

MiningService::MiningService(MiningServiceOptions options)
    : options_(std::move(options)) {
  options_.num_executors = std::max<uint32_t>(1, options_.num_executors);
  paused_ = options_.start_paused;
  // Recovery runs before any executor exists: replay mutates jobs_ and
  // finished_order_ without the mutex, which is safe only while this
  // constructor is the sole thread.
  RecoverFromJournal();
  executors_.reserve(options_.num_executors);
  for (uint32_t i = 0; i < options_.num_executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

MiningService::MiningService(MinerSession session, MiningServiceOptions options)
    : MiningService(std::move(options)) {
  // Tenant 0 — the single-tenant shape. Registration cannot fail here: the
  // service just started (not stopping) and the default weight is valid.
  Result<TenantId> tenant = AddTenant(std::move(session), TenantOptions{});
  DCS_CHECK(tenant.ok() && *tenant == 0) << tenant.status().ToString();
}

MiningService::~MiningService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Every queued job dies terminally cancelled; unapplied updates are
    // dropped with their sessions (shutdown abandons the streams).
    for (auto& tenant : tenants_) {
      for (QueuedOp& op : tenant->queue) {
        if (op.job != nullptr && op.job->state == JobState::kQueued) {
          LeaveQueueLocked(tenant.get(), op.job.get());
          op.job->state = JobState::kCancelled;
          FinishLocked(op.job);
        }
      }
      tenant->queue.clear();
    }
    // Recovered jobs whose tenant never re-registered die cancelled too —
    // and are journaled as such, so the *next* recovery does not resubmit
    // work this graceful shutdown already declined. They never entered any
    // queue, so there are no gauges to release.
    for (auto& [tenant_id, pending] : recovery_pending_) {
      for (const std::shared_ptr<Job>& job : pending) {
        if (job->state == JobState::kQueued) {
          job->state = JobState::kCancelled;
          FinishLocked(job);
        }
      }
    }
    recovery_pending_.clear();
    // The in-flight jobs (if any) are asked to stop; each executor observes
    // the token between seed chunks and records the terminal state before
    // exiting.
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) job->cancel.Cancel();
    }
  }
  work_available_.notify_all();
  job_finished_.notify_all();
  deadline_work_.notify_all();
  for (std::thread& executor : executors_) executor.join();
  watchdog_.join();
  // Every job is terminal now, so all Wait()ers are waking up. Let them get
  // back out of job_finished_.wait and off mutex_ before either is
  // destroyed; TakeSnapshot's unlocked response copy is safe afterwards
  // because each waiter pinned its Job with a local shared_ptr.
  std::unique_lock<std::mutex> lock(mutex_);
  waiters_done_.wait(lock, [this] { return active_waiters_ == 0; });
}

Result<TenantId> MiningService::AddTenant(MinerSession session,
                                          TenantOptions options) {
  if (options.weight == 0) {
    return Status::InvalidArgument("tenant weight must be >= 1");
  }
  // Attach service-level resources before the tenant becomes schedulable —
  // no executor can touch the session until it is registered under the
  // lock. Cache first, store second: the warm boot must hydrate the cache
  // the service actually mines against.
  if (options_.shared_cache != nullptr) {
    session.UsePipelineCache(options_.shared_cache);
  }
  if (options_.artifact_store != nullptr) {
    session.UseArtifactStore(options_.artifact_store);
  }
  if (options_.worker_pool != nullptr) {
    session.UseWorkerPool(options_.worker_pool);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::Cancelled("mining service is shutting down");
  }
  const TenantId id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(
      std::make_unique<Tenant>(id, std::move(session), options));
  // Recovered incomplete jobs for this tenant id enter its queue *now*, in
  // admission order, so they precede anything the caller submits next.
  EnqueueRecoveredLocked(tenants_.back().get());
  return id;
}

void MiningService::RecoverFromJournal() {
  if (options_.journal_path.empty()) return;
  Result<std::shared_ptr<JobJournal>> opened =
      JobJournal::Open(options_.journal_path, options_.journal_options);
  if (!opened.ok()) {
    // The service stays alive (Poll/Wait/AddTenant work) but refuses new
    // admissions: an acked Submit must be journaled, and it cannot be.
    journal_error_ = opened.status();
    DCS_LOG(Warning) << "job journal " << options_.journal_path
                     << " unavailable: " << journal_error_.ToString();
    return;
  }
  journal_ = std::move(*opened);
  Result<std::vector<JournalReplayJob>> replayed = journal_->Replay();
  if (!replayed.ok()) {
    journal_error_ = replayed.status();
    journal_.reset();
    DCS_LOG(Warning) << "job journal replay failed: "
                     << journal_error_.ToString();
    return;
  }
  // Converge a crashed-mid-append file back to fsck-clean now, not at the
  // next append (which may never come).
  (void)journal_->TruncateUnreliableTail();
  JobId max_id = 0;
  for (const JournalReplayJob& entry : *replayed) {
    auto job = std::make_shared<Job>();
    job->id = entry.admitted.job_id;
    job->tenant = entry.admitted.tenant;
    job->request = entry.admitted.request;
    job->request.ga_solver.cancel = nullptr;  // recovery re-owns cancellation
    job->approx_bytes = ApproxRequestBytes(job->request);
    max_id = std::max(max_id, job->id);
    admission_seq_ = std::max(admission_seq_, entry.admitted.admission_index);
    recovered_job_ids_.push_back(job->id);
    jobs_.emplace(job->id, job);
    if (!entry.done) {
      // Incomplete (admitted or started, never finished): parked until its
      // tenant id re-registers, then resubmitted in admission order.
      recovery_pending_[job->tenant].push_back(std::move(job));
      continue;
    }
    // Terminal before the crash: re-exposed through Poll/Wait exactly-once,
    // never re-run. kDone responses are bit-identical to the mined content
    // (telemetry is process state and was never journaled).
    const JournalDoneRecord& done = entry.done_record;
    switch (done.state) {
      case JournalTerminalState::kDone:
        job->state = JobState::kDone;
        job->response = done.response;
        break;
      case JournalTerminalState::kFailed:
        job->state = JobState::kFailed;
        job->failure = StatusFromJournal(done.status_code,
                                         done.status_message);
        break;
      case JournalTerminalState::kCancelled:
        job->state = JobState::kCancelled;
        break;
    }
    job->finish_index = ++finish_seq_;
    finished_order_.push_back(job->id);
  }
  if (max_id >= next_job_id_) next_job_id_ = max_id + 1;
  if (options_.max_finished_jobs != 0) {
    while (finished_order_.size() > options_.max_finished_jobs) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
  }
  // Stamp the journal counters into recovered done responses, exactly as
  // JournalDoneLocked does for freshly mined ones.
  const JobJournalStats stats = journal_->stats();
  for (const JobId id : recovered_job_ids_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->state != JobState::kDone) continue;
    MiningTelemetry& telemetry = it->second->response.telemetry;
    telemetry.journal_appends = stats.appended_records;
    telemetry.journal_recovered_jobs = recovered_job_ids_.size();
    telemetry.journal_truncations = stats.truncations;
  }
}

void MiningService::EnqueueRecoveredLocked(Tenant* tenant) {
  const auto it = recovery_pending_.find(tenant->id);
  if (it == recovery_pending_.end()) return;
  if (tenant->queue.empty() && !tenant->busy) {
    tenant->vtime = MinActiveVtimeLocked(*tenant, tenant->vtime);
  }
  for (std::shared_ptr<Job>& job : it->second) {
    // Deadline clocks restart at recovery: the deadline is a latency bound
    // on *this* process's handling, not a wall-clock appointment that may
    // already have lapsed while no service existed.
    job->since_submit.Restart();
    tenant->queue.push_back(QueuedOp{job});
    ++tenant->num_queued_jobs;
    ++tenant->stats.submitted;
    ++num_queued_jobs_;
    queued_request_bytes_ += job->approx_bytes;
    ++num_submitted_;
    if (HasDeadline(job->request)) {
      deadline_jobs_.push_back(job);
      deadline_work_.notify_one();
    }
    work_available_.notify_one();
  }
  recovery_pending_.erase(it);
}

void MiningService::JournalDoneLocked(const std::shared_ptr<Job>& job) {
  if (journal_ == nullptr) return;
  JournalDoneRecord record;
  record.job_id = job->id;
  switch (job->state) {
    case JobState::kDone:
      record.state = JournalTerminalState::kDone;
      record.has_response = true;
      record.response = job->response;
      break;
    case JobState::kFailed:
      record.state = JournalTerminalState::kFailed;
      record.status_code = static_cast<uint32_t>(job->failure.code());
      record.status_message = job->failure.message();
      break;
    case JobState::kCancelled:
      record.state = JournalTerminalState::kCancelled;
      record.status_code = static_cast<uint32_t>(StatusCode::kCancelled);
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      return;
  }
  if (!journal_->AppendDone(record).ok()) {
    // Non-fatal: the job is terminal either way; the next recovery re-runs
    // it and mines the bit-identical result again.
    ++journal_append_errors_;
  }
  if (job->state == JobState::kDone) {
    const JobJournalStats stats = journal_->stats();
    MiningTelemetry& telemetry = job->response.telemetry;
    telemetry.journal_appends = stats.appended_records;
    telemetry.journal_recovered_jobs = recovered_job_ids_.size();
    telemetry.journal_truncations = stats.truncations;
  }
}

size_t MiningService::ApproxRequestBytes(const MiningRequest& request) {
  // Deterministic and cheap: the fixed-size struct plus its string
  // payloads. Close enough for a shed-load-early budget; it intentionally
  // ignores allocator overhead.
  return sizeof(MiningRequest) + request.ad_solver_name.size() +
         request.ga_solver_name.size();
}

Result<JobId> MiningService::Submit(TenantId tenant_id,
                                    MiningRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::Cancelled("mining service is shutting down");
  }
  if (!journal_error_.ok()) {
    // A journal was configured but could not be opened: refusing admission
    // beats acking work the journal cannot make durable.
    return journal_error_;
  }
  if (tenant_id >= tenants_.size()) {
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(tenant_id));
  }
  Tenant& tenant = *tenants_[tenant_id];
  // Admission control, cheapest check first. Per-tenant backpressure keeps
  // the historical OutOfRange signal; the service-wide job/byte budgets
  // answer with kResourceExhausted so callers can tell "my queue is full"
  // (drain your own work) from "the service is full" (shed load anywhere).
  const size_t tenant_cap = tenant.options.max_queued_jobs != 0
                                ? tenant.options.max_queued_jobs
                                : options_.max_queued_jobs;
  if (tenant_cap != 0 && tenant.num_queued_jobs >= tenant_cap) {
    ++tenant.stats.admission_rejections;
    ++num_admission_rejections_;
    return Status::OutOfRange(
        "job queue full (" + std::to_string(tenant.num_queued_jobs) +
        " queued); retry after draining");
  }
  if (options_.max_total_queued_jobs != 0 &&
      num_queued_jobs_ >= options_.max_total_queued_jobs) {
    ++tenant.stats.admission_rejections;
    ++num_admission_rejections_;
    return Status::ResourceExhausted(
        "service job budget exhausted (" + std::to_string(num_queued_jobs_) +
        " queued across tenants); shed load and retry");
  }
  const size_t bytes = ApproxRequestBytes(request);
  if (options_.max_queued_request_bytes != 0 &&
      queued_request_bytes_ + bytes > options_.max_queued_request_bytes) {
    ++tenant.stats.admission_rejections;
    ++num_admission_rejections_;
    return Status::ResourceExhausted(
        "service byte budget exhausted (" +
        std::to_string(queued_request_bytes_) + " of " +
        std::to_string(options_.max_queued_request_bytes) +
        " bytes queued); shed load and retry");
  }
  auto job = std::make_shared<Job>();
  job->id = next_job_id_++;
  job->tenant = tenant_id;
  job->request = std::move(request);
  job->approx_bytes = bytes;
  // The service owns cancellation for queued work: a caller-embedded
  // DcsgaOptions::cancel pointer could dangle before the executor runs the
  // job and would shadow the per-job token (making Cancel(id) a silent
  // no-op for the seed loop), so it is stripped — Cancel(JobId) is the one
  // cancellation path.
  job->request.ga_solver.cancel = nullptr;
  if (journal_ != nullptr) {
    // Durable admission: the Admitted record lands (and, under kAlways,
    // fsyncs) before the caller gets its JobId — acked implies journaled. A
    // failed append fails the Submit with nothing admitted.
    JournalAdmittedRecord record;
    record.job_id = job->id;
    record.tenant = tenant_id;
    record.admission_index = admission_seq_ + 1;
    record.request = job->request;
    const Status appended = journal_->AppendAdmitted(record);
    if (!appended.ok()) {
      --next_job_id_;
      return appended;
    }
    admission_seq_ = record.admission_index;
  }
  jobs_.emplace(job->id, job);
  // Idle catch-up of the fair clock: a tenant rejoining after an idle
  // stretch resumes at the active floor instead of replaying its banked
  // credit and monopolizing the executors.
  if (tenant.queue.empty() && !tenant.busy) {
    tenant.vtime = MinActiveVtimeLocked(tenant, tenant.vtime);
  }
  tenant.queue.push_back(QueuedOp{job});
  ++tenant.num_queued_jobs;
  ++tenant.stats.submitted;
  ++num_queued_jobs_;
  queued_request_bytes_ += bytes;
  ++num_submitted_;
  if (HasDeadline(job->request)) {
    // Register with the watchdog; waking it re-derives the sleep horizon,
    // which this job may have moved up.
    deadline_jobs_.push_back(job);
    deadline_work_.notify_one();
  }
  work_available_.notify_one();
  return job->id;
}

Result<JobId> MiningService::Submit(MiningRequest request) {
  return Submit(TenantId{0}, std::move(request));
}

Status MiningService::ApplyUpdate(TenantId tenant_id, UpdateSide side,
                                  VertexId u, VertexId v, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::Cancelled("mining service is shutting down");
  }
  if (tenant_id >= tenants_.size()) {
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(tenant_id));
  }
  Tenant& tenant = *tenants_[tenant_id];
  // Eager validation (against the tenant's fixed vertex universe) keeps the
  // deferred apply infallible, so a bad update is reported to its submitter
  // instead of poisoning the queue. num_vertices() is immutable, so reading
  // it while the tenant's session mines is safe.
  DCS_RETURN_NOT_OK(MinerSession::ValidateUpdate(tenant.session.num_vertices(),
                                                 u, v, delta));
  QueuedOp op;
  op.side = side;
  op.u = u;
  op.v = v;
  op.delta = delta;
  tenant.queue.push_back(std::move(op));
  work_available_.notify_one();
  return Status::OK();
}

Status MiningService::ApplyUpdate(UpdateSide side, VertexId u, VertexId v,
                                  double delta) {
  return ApplyUpdate(TenantId{0}, side, u, v, delta);
}

// Fills the cheap JobStatus fields under the lock, then releases it for the
// deep MiningResponse copy: a kDone job is terminal and never mutated again,
// so copying its (potentially large) response outside the mutex is safe and
// keeps pollers from stalling Submit and the executors' finish paths.
JobStatus MiningService::TakeSnapshot(std::unique_lock<std::mutex>* lock,
                                      const std::shared_ptr<Job>& job) const {
  JobStatus status;
  status.id = job->id;
  status.tenant = job->tenant;
  status.state = job->state;
  status.failure = job->failure;
  status.queue_seconds = job->queue_seconds;
  status.run_seconds = job->run_seconds;
  status.finish_index = job->finish_index;
  lock->unlock();
  if (status.state == JobState::kDone) status.response = job->response;
  return status;
}

Result<JobStatus> MiningService::Poll(JobId id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown (or evicted) job id " +
                            std::to_string(id));
  }
  // Pin the job before TakeSnapshot drops the lock: jobs_ is the sole
  // long-term owner, and a concurrent finish can evict this entry (and with
  // it the Job) while the unlocked response copy is in flight.
  std::shared_ptr<Job> job = it->second;
  return TakeSnapshot(&lock, job);
}

Result<JobStatus> MiningService::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown (or evicted) job id " +
                            std::to_string(id));
  }
  // Hold the job alive across the wait: eviction only erases the map entry.
  std::shared_ptr<Job> job = it->second;
  // Registered waiters block destruction: ~MiningService may not tear down
  // mutex_/job_finished_ while we sleep on them.
  {
    ScopedWaiter waiter(this);
    job_finished_.wait(lock, [&job] {
      const JobState s = job->state;
      return s == JobState::kDone || s == JobState::kFailed ||
             s == JobState::kCancelled;
    });
  }
  return TakeSnapshot(&lock, job);
}

Result<JobStatus> MiningService::Cancel(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown (or evicted) job id " +
                            std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  // Explicit cancellation wins over a racing deadline: the caller asked
  // first, so the terminal state is kCancelled even if the watchdog also
  // fired this job's token (see Job::user_cancelled).
  job->user_cancelled = true;
  job->cancel.Cancel();
  if (job->state == JobState::kQueued) {
    // Terminal immediately: the executor skips the stale queue entry, so a
    // cancelled queued job is guaranteed to never start.
    LeaveQueueLocked(tenants_[job->tenant].get(), job.get());
    job->state = JobState::kCancelled;
    FinishLocked(job);
  }
  // A running job finishes cancelling asynchronously; terminal jobs no-op.
  return TakeSnapshot(&lock, job);
}

void MiningService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_available_.notify_all();
}

void MiningService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Same registration as Wait(): the destructor must not tear down
  // mutex_/job_finished_ while a drainer sleeps on them.
  ScopedWaiter waiter(this);
  job_finished_.wait(lock, [this] { return IdleLocked() || stopping_; });
}

bool MiningService::IdleLocked() const {
  for (const auto& tenant : tenants_) {
    if (tenant->busy || !tenant->queue.empty()) return false;
  }
  return num_running_jobs_ == 0;
}

size_t MiningService::num_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

Result<TenantStats> MiningService::tenant_stats(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tenant >= tenants_.size()) {
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(tenant));
  }
  TenantStats stats = tenants_[tenant]->stats;
  stats.virtual_time = tenants_[tenant]->vtime;
  return stats;
}

uint64_t MiningService::num_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_submitted_;
}

size_t MiningService::num_pending_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_queued_jobs_ + num_running_jobs_;
}

size_t MiningService::num_active_waiters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_waiters_;
}

std::vector<JobId> MiningService::recovered_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_job_ids_;
}

uint64_t MiningService::num_recovered_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_job_ids_.size();
}

Result<JobJournalStats> MiningService::journal_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (journal_ != nullptr) return journal_->stats();
  if (!journal_error_.ok()) return journal_error_;
  return Status::NotFound("no job journal configured");
}

uint64_t MiningService::num_deadline_exceeded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_deadline_exceeded_;
}

uint64_t MiningService::num_admission_rejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_admission_rejections_;
}

size_t MiningService::queued_request_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_request_bytes_;
}

HealthState MiningService::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

uint64_t MiningService::num_health_transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& tenant : tenants_) total += tenant->health_transitions;
  return total;
}

uint64_t MiningService::num_store_write_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& tenant : tenants_) total += tenant->store_write_errors;
  return total;
}

uint64_t MiningService::num_store_retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& tenant : tenants_) total += tenant->store_retries;
  return total;
}

void MiningService::LeaveQueueLocked(Tenant* tenant, Job* job) {
  DCS_CHECK(job->state == JobState::kQueued);
  job->queue_seconds = job->since_submit.Seconds();
  DCS_CHECK(tenant->num_queued_jobs > 0);
  --tenant->num_queued_jobs;
  DCS_CHECK(num_queued_jobs_ > 0);
  --num_queued_jobs_;
  DCS_CHECK(queued_request_bytes_ >= job->approx_bytes);
  queued_request_bytes_ -= job->approx_bytes;
  tenant->stats.total_queue_seconds += job->queue_seconds;
  tenant->stats.max_queue_seconds =
      std::max(tenant->stats.max_queue_seconds, job->queue_seconds);
}

void MiningService::ExpireQueuedLocked(const std::shared_ptr<Job>& job) {
  DCS_CHECK(job->state == JobState::kQueued);
  Tenant* tenant = tenants_[job->tenant].get();
  LeaveQueueLocked(tenant, job.get());
  job->state = JobState::kFailed;
  job->failure = Status::DeadlineExceeded(
      "deadline of " + std::to_string(job->request.deadline_seconds) +
      "s elapsed before the job left the queue");
  ++num_deadline_exceeded_;
  ++tenant->stats.deadline_exceeded;
  FinishLocked(job);
}

void MiningService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    // One pass over the watched jobs: prune terminal entries, expire
    // overdue ones, and derive the next sleep horizon from the rest.
    double earliest = 0.0;
    bool have_pending = false;
    for (auto it = deadline_jobs_.begin(); it != deadline_jobs_.end();) {
      const std::shared_ptr<Job>& job = *it;
      const JobState state = job->state;
      if (state != JobState::kQueued && state != JobState::kRunning) {
        it = deadline_jobs_.erase(it);
        continue;
      }
      const double remaining =
          job->request.deadline_seconds - job->since_submit.Seconds();
      if (remaining > 0.0) {
        earliest = have_pending ? std::min(earliest, remaining) : remaining;
        have_pending = true;
        ++it;
        continue;
      }
      if (state == JobState::kQueued) {
        // Guaranteed to never start: the executor skips the stale queue
        // entry exactly like a cancelled-while-queued job's.
        ExpireQueuedLocked(job);
      } else {
        // Running: fire the per-job token. The solve aborts between seed
        // chunks with no partial result, and the executor's finish path
        // maps the Cancelled status to kFailed + kDeadlineExceeded. If the
        // solve completes before observing the token, the job stays kDone
        // with its full (bit-identical) result — the deadline is a latency
        // bound, not a result invalidator.
        job->deadline_fired = true;
        job->cancel.Cancel();
      }
      it = deadline_jobs_.erase(it);
    }
    if (stopping_) return;
    if (!have_pending) {
      deadline_work_.wait(lock);  // re-derives on submit/shutdown wakeups
    } else {
      deadline_work_.wait_for(lock, std::chrono::duration<double>(earliest));
    }
  }
}

void MiningService::FinishLocked(const std::shared_ptr<Job>& job) {
  DCS_CHECK(job->state == JobState::kDone || job->state == JobState::kFailed ||
            job->state == JobState::kCancelled)
      << "FinishLocked on a non-terminal job";
  job->finish_index = ++finish_seq_;
  JournalDoneLocked(job);
  // A recovered job cancelled before its tenant re-registered has no Tenant
  // object to account against — everything else updates its tenant's stats.
  if (job->tenant < tenants_.size()) {
    TenantStats& stats = tenants_[job->tenant]->stats;
    switch (job->state) {
      case JobState::kDone:
        ++stats.completed;
        break;
      case JobState::kFailed:
        ++stats.failed;
        break;
      case JobState::kCancelled:
        ++stats.cancelled;
        break;
      case JobState::kQueued:
      case JobState::kRunning:
        break;
    }
  }
  finished_order_.push_back(job->id);
  if (options_.max_finished_jobs != 0) {
    while (finished_order_.size() > options_.max_finished_jobs) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
  }
  job_finished_.notify_all();
}

MiningService::Tenant* MiningService::PickTenantLocked() {
  Tenant* best = nullptr;
  int64_t best_priority = std::numeric_limits<int64_t>::min();
  for (const auto& tenant : tenants_) {
    if (tenant->busy || tenant->queue.empty()) continue;
    const int64_t priority = HeadPriorityLocked(*tenant);
    // Strict inequalities make ties resolve to the lowest tenant id — the
    // iteration order — which is what keeps scheduling decisions
    // deterministic for the fairness tests.
    if (best == nullptr || priority > best_priority ||
        (priority == best_priority && tenant->vtime < best->vtime)) {
      best = tenant.get();
      best_priority = priority;
    }
  }
  return best;
}

int64_t MiningService::HeadPriorityLocked(const Tenant& tenant) const {
  for (const QueuedOp& op : tenant.queue) {
    if (op.job != nullptr && op.job->state == JobState::kQueued) {
      return op.job->request.priority;
    }
  }
  // Only fenced updates / stale entries: the queue still needs draining,
  // but it never outranks a tenant with a live job.
  return std::numeric_limits<int64_t>::min();
}

double MiningService::MinActiveVtimeLocked(const Tenant& except,
                                           double fallback) const {
  double floor = fallback;
  bool have_active = false;
  for (const auto& tenant : tenants_) {
    if (tenant.get() == &except) continue;
    if (!tenant->busy && tenant->queue.empty()) continue;
    floor = have_active ? std::min(floor, tenant->vtime) : tenant->vtime;
    have_active = true;
  }
  // Never rewind: catch-up only ever moves a rejoining tenant forward.
  return std::max(fallback, floor);
}

void MiningService::RunTenantOnce(std::unique_lock<std::mutex>* lock,
                                  Tenant* tenant) {
  tenant->busy = true;
  // Cascade the wakeup: this executor absorbed a notify to serve one
  // tenant, but other tenants may be runnable too (a notify_one can land on
  // an executor that was already between wait and re-pick). Waking one peer
  // per dispatch guarantees every runnable tenant eventually has an
  // executor without thundering the whole pool.
  if (PickTenantLocked() != nullptr) work_available_.notify_one();
  while (!tenant->queue.empty()) {
    QueuedOp op = std::move(tenant->queue.front());
    tenant->queue.pop_front();

    if (op.job == nullptr) {
      // Fenced streaming update: applied strictly after the jobs this
      // tenant submitted before it, strictly before those submitted after.
      // Pre-validated, so a failure here is a library bug. tenant->busy
      // keeps Drain from returning — and other executors off this session —
      // inside the unlocked apply window.
      lock->unlock();
      const Status applied =
          tenant->session.ApplyUpdate(op.side, op.u, op.v, op.delta);
      DCS_CHECK(applied.ok()) << applied.ToString();
      lock->lock();
      continue;
    }

    std::shared_ptr<Job> job = std::move(op.job);
    if (job->state != JobState::kQueued) {
      // Cancelled (or deadline-expired) while queued: the job went terminal
      // under Cancel() or the watchdog; this is just its stale queue entry.
      continue;
    }
    if (HasDeadline(job->request) &&
        job->since_submit.Seconds() >= job->request.deadline_seconds) {
      // Dequeue-time expiry check: with a deadline shorter than the
      // watchdog's wakeup latency the job must still fail deterministically
      // instead of racing into a solve.
      ExpireQueuedLocked(job);
      continue;
    }

    LeaveQueueLocked(tenant, job.get());
    job->state = JobState::kRunning;
    ++tenant->stats.dispatched;
    // Advance the fair clock at dispatch (not completion) so concurrent
    // executors already see this tenant's consumed share while its job is
    // still solving.
    tenant->vtime += 1.0 / tenant->options.weight;
    ++num_running_jobs_;
    if (journal_ != nullptr && !journal_->AppendStarted(job->id).ok()) {
      // Started is a dispatch hint, not an ack: losing it only costs the
      // next recovery a re-run it would have done anyway.
      ++journal_append_errors_;
    }

    lock->unlock();
    WallTimer run_timer;
    // Demote solver exceptions to the Status contract (libdcs is
    // exception-free, registered solvers need not be): an escape here would
    // std::terminate the executor thread and take every queued job with it.
    Result<MiningResponse> mined = Status::Internal("not mined");
    try {
      mined = tenant->session.Mine(job->request, &job->cancel);
    } catch (const std::exception& e) {
      mined = Status::Internal(std::string("solver threw: ") + e.what());
    } catch (...) {
      mined = Status::Internal("solver threw a non-std exception");
    }
    const double run_seconds = run_timer.Seconds();
    // Ladder step on the executor thread (the session's only user while
    // tenant->busy is held), so the mirror below reflects write-back
    // failures as soon as the store reported them — not one job late.
    tenant->session.RefreshHealth();
    lock->lock();

    --num_running_jobs_;
    tenant->health = tenant->session.health();
    tenant->health_transitions = tenant->session.num_health_transitions();
    tenant->store_write_errors = tenant->session.num_store_write_errors();
    tenant->store_retries = tenant->session.num_store_retries();
    HealthState worst = HealthState::kHealthy;
    for (const auto& t : tenants_) worst = WorseOf(worst, t->health);
    health_ = worst;
    job->run_seconds = run_seconds;
    tenant->stats.total_run_seconds += run_seconds;
    if (mined.ok()) {
      job->state = JobState::kDone;
      job->response = std::move(*mined);
    } else if (mined.status().IsCancelled()) {
      if (job->deadline_fired && !job->user_cancelled) {
        // The watchdog — not a caller — stopped this solve: surface it as
        // the failure it is, carrying kDeadlineExceeded, with no partial
        // result. The session stays reusable for the next queued job.
        job->state = JobState::kFailed;
        job->failure = Status::DeadlineExceeded(
            "deadline of " + std::to_string(job->request.deadline_seconds) +
            "s exceeded while running");
        ++num_deadline_exceeded_;
        ++tenant->stats.deadline_exceeded;
      } else {
        job->state = JobState::kCancelled;
      }
    } else {
      // Failure propagation: a bad measure/solver id or invalid request
      // becomes a terminal failed job carrying the solver's status — the
      // service itself never crashes and keeps draining the queues.
      job->state = JobState::kFailed;
      job->failure = mined.status();
    }
    FinishLocked(job);
    // One job per scheduling decision: releasing the tenant and re-picking
    // is what lets priorities and the fair clock interleave tenants.
    break;
  }
  tenant->busy = false;
  if (!tenant->queue.empty()) {
    // This tenant still has work (a job behind the one just run, or fenced
    // updates); hand it to the next free executor through a fresh pick.
    work_available_.notify_one();
  }
  // The queue may have emptied on a skip/update/expire path whose
  // FinishLocked-time notify saw a non-empty queue (or that never finished
  // a job at all) — Drain watches the all-idle condition, so re-check it
  // here, after busy dropped.
  if (IdleLocked()) job_finished_.notify_all();
}

void MiningService::ExecutorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    Tenant* tenant = nullptr;
    work_available_.wait(lock, [this, &tenant] {
      if (stopping_) return true;
      if (paused_) return false;
      tenant = PickTenantLocked();
      return tenant != nullptr;
    });
    if (stopping_) return;
    RunTenantOnce(&lock, tenant);
  }
}

}  // namespace dcs
