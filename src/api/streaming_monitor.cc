#include "api/streaming_monitor.h"

#include <cmath>
#include <utility>

#include "util/logging.h"

namespace dcs {
namespace {

MinerSession MakeStreamingSession(VertexId num_vertices) {
  DCS_CHECK(num_vertices >= 1) << "monitor needs at least one vertex";
  return std::move(MinerSession::CreateStreaming(num_vertices)).value();
}

}  // namespace

StreamingDcsMonitor::StreamingDcsMonitor(VertexId num_vertices, double alpha)
    : session_(MakeStreamingSession(num_vertices)), alpha_(alpha) {
  DCS_CHECK(std::isfinite(alpha) && alpha > 0.0) << "alpha must be positive";
}

Status StreamingDcsMonitor::ApplyUpdate(StreamSide side, VertexId u,
                                        VertexId v, double delta) {
  return session_.ApplyUpdate(side, u, v, delta);
}

Result<Graph> StreamingDcsMonitor::DifferenceSnapshot() {
  return session_.DifferenceSnapshot(alpha_);
}

Result<DcsadResult> StreamingDcsMonitor::MineDcsad() {
  DCS_ASSIGN_OR_RETURN(Graph gd, DifferenceSnapshot());
  return RunDcsGreedy(gd);
}

Result<DcsgaResult> StreamingDcsMonitor::MineDcsga(
    const DcsgaOptions& options) {
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.alpha = alpha_;
  request.ga_solver = options;
  request.warm_start = true;
  DCS_ASSIGN_OR_RETURN(MiningResponse response, session_.Mine(request));

  DcsgaResult result;
  result.initializations = response.telemetry.initializations;
  result.cd_iterations = response.telemetry.cd_iterations;
  result.replicator_sweeps = response.telemetry.replicator_sweeps;
  result.expansion_errors = response.telemetry.expansion_errors;
  if (response.graph_affinity.empty()) {
    // No subgraph with positive affinity difference: the §III-B trivial
    // single-vertex solution.
    result.x = Embedding::UnitVector(session_.num_vertices(), 0);
    result.support = {0};
    result.affinity = 0.0;
    return result;
  }
  const RankedSubgraph& best = response.graph_affinity.front();
  result.x = Embedding::Zeros(session_.num_vertices());
  for (size_t i = 0; i < best.vertices.size(); ++i) {
    result.x.x[best.vertices[i]] = best.weights[i];
  }
  result.support = best.vertices;
  result.affinity = best.value;
  return result;
}

}  // namespace dcs
