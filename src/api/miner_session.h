// MinerSession — the session-oriented entry point of libdcs.
//
// A session owns the two input graphs G1/G2 (or grows them from a stream of
// weight updates), prepares each requested difference-graph pipeline
// (alpha/flip/discretize/clamp) through a PipelineCache — private by
// default, shareable across sessions (api/pipeline_cache.h) — lazily
// derives the DCSGA artifacts (GD+ and the §V-D smart-initialization
// bounds) per pipeline, and dispatches measures to solvers through the
// SolverRegistry. This is the one API tools, examples and services program
// against; core/ and densest/ are internal layers behind it.
//
// Ownership: a session owns its graphs, its pending update stream, its warm
// start seed and its worker pool; it owns its pipeline cache only when no
// shared cache was supplied (SessionOptions::pipeline_cache), otherwise it
// holds a shared_ptr co-owning the cache with the other attached sessions.
//
// Thread safety: single-threaded by design except for MineAll's internal
// worker pool — one session per serving thread is the intended deployment
// shape, with api/mining_service.h as the queueing layer when callers are
// concurrent. A *shared PipelineCache* is the one deliberately concurrent
// seam: any number of sessions on any threads may attach to one cache.
//
// Determinism: responses are pure functions of the session's graphs and the
// request (given warm_start off); neither the thread count, nor batching
// through MineAll, nor serving pipelines from a shared cache changes a
// mined subgraph bit — only the wall-time and cache-counter telemetry vary.
//
// Scale path: the session owns one shared ThreadPool (util/thread_pool.h).
// MineAll runs independent requests on it against the pipeline cache, and a
// single request's NewSEA solve can additionally shard its seed loop across
// the same pool (intra-request parallelism, bit-identical to sequential —
// see core/newsea.h). MineAll splits the pool budget between the two
// levels. Cross-session, a shared PipelineCache makes N sessions over the
// same dataset pay the pipeline-preparation prefix once.
//
// Streaming path: a small ApplyUpdate batch is folded in O(Δ) — base
// graphs through a CSR overlay (graph/csr_patcher.h), the fingerprint
// through incremental accumulators, and every cached pipeline by a delta
// patch republished under the new fingerprint — with a full-rebuild
// fallback past the SessionOptions::patch_rebuild_ratio crossover. Both
// paths are bit-identical; see ARCHITECTURE.md "Streaming update data
// flow".

#ifndef DCS_API_MINER_SESSION_H_
#define DCS_API_MINER_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "api/mining.h"
#include "api/pipeline_cache.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dcs {

class ArtifactStore;  // store/artifact_store.h (re-exported by
                      // api/artifact_store.h)

/// Session-level tuning.
struct SessionOptions {
  /// Capacity of the session's *private* pipeline cache (LRU eviction);
  /// 0 behaves as 1 — the most recent pipeline is always kept. Ignored when
  /// `pipeline_cache` is set — the shared cache then applies its own
  /// PipelineCacheOptions.
  size_t max_cached_pipelines = 8;
  /// Cross-session shared pipeline cache. Null (default) gives the session
  /// a private cache, preserving single-session behavior exactly; non-null
  /// attaches the session to the shared cache so equal datasets prepare
  /// their pipelines once across all attached sessions.
  std::shared_ptr<PipelineCache> pipeline_cache;
  /// Persistent artifact store (api/artifact_store.h). Null (default)
  /// keeps the session memory-only. Non-null warm-boots the session at
  /// creation — every valid stored pipeline of its graph pair is hydrated
  /// into the pipeline cache — and thereafter pipelines this session builds
  /// (or upgrades, or republishes after a streaming patch) are written back
  /// asynchronously, so a restarted process serves its first queries from
  /// disk instead of rebuilding. Corrupt or stale records are silently
  /// rebuilt over; responses are bit-identical either way.
  std::shared_ptr<ArtifactStore> artifact_store;
  /// Graceful-degradation ladder (see HealthState in api/mining.h): once
  /// the attached store has accumulated this many failed write-backs, the
  /// session detaches it and continues memory-only — mining results are
  /// unchanged bit for bit, only persistence stops. Any failure count below
  /// the threshold reads as kDegraded. 0 disables the ladder (the session
  /// never detaches, staying at most kDegraded).
  uint32_t store_failure_threshold = 4;
  /// Total thread budget of the session's shared worker pool; 0 =
  /// std::thread::hardware_concurrency(). MineAll splits it between
  /// concurrent requests (inter) and each request's NewSEA seed shards
  /// (intra, granted to requests whose ga_solver.parallelism is 0 = auto);
  /// Mine grants the whole budget to its one request. The pool is spawned
  /// lazily on the first batched or intra-parallel solve.
  uint32_t max_parallelism = 0;
  /// Cross-session shared worker pool. Null (default) keeps the session's
  /// private, lazily spawned pool — single-session behavior exactly.
  /// Non-null makes every batched or intra-parallel solve run on the shared
  /// pool instead: the multi-tenant MiningService attaches one pool to all
  /// of its tenant sessions, so N tenants contend for one fixed set of
  /// worker threads rather than spawning N private pools. max_parallelism
  /// still caps how many seed shards one solve fans out, and responses are
  /// bit-identical whichever pool executes them (see util/thread_pool.h —
  /// RunTasks is safe to call concurrently from many sessions).
  std::shared_ptr<ThreadPool> worker_pool;
  /// Magnitude below which an accumulated weight counts as cancelled when
  /// streaming updates are folded into the graphs.
  double zero_eps = 1e-12;
  /// Streaming update crossover: a flush whose batch of Δ distinct pending
  /// pairs satisfies Δ <= patch_rebuild_ratio · (m1 + m2) is folded by the
  /// O(Δ) patch path — the CSR graphs are spliced in place
  /// (graph/csr_patcher.h), the graph fingerprint is updated incrementally,
  /// and every cached pipeline of the old fingerprint is delta-patched and
  /// republished under the new one, so the next queries hit instead of
  /// rebuilding. Larger batches (and the initial bulk load, where m = 0)
  /// take the classic full rebuild; both paths are bit-identical. 0 disables
  /// patching. The default sits safely under the measured crossover — the
  /// patch path stays ahead of a rebuild well past Δ/m = 0.25 (see
  /// bench_streaming_updates / BENCH_streaming_updates.json).
  double patch_rebuild_ratio = 0.25;
  /// Permit floating-point reassociation in the DCSGA reduction kernels for
  /// every request this session serves (per-request opt-in:
  /// MiningRequest::ga_solver.fast_math). Off (default): every solve is
  /// bit-identical to the scalar reference kernels at every thread count
  /// and ISA. On: the affinity reductions may use vector-lane accumulation
  /// — results stay deterministic for a fixed (graphs, request), but are no
  /// longer bit-identical to the default path. See core/kernels.h and the
  /// ARCHITECTURE.md "Kernel layer" section for the exactness rules.
  bool fast_math = false;
};

/// \brief A mining session over a pair of graphs on a fixed vertex universe.
///
/// See the file comment for the ownership / thread-safety / determinism
/// contract.
class MinerSession {
 public:
  /// Batch construction: both graphs up front. Fails when the vertex counts
  /// differ or are zero.
  static Result<MinerSession> Create(Graph g1, Graph g2,
                                     SessionOptions options = {});

  /// Streaming construction: an empty G1/G2 pair over `num_vertices`
  /// vertices, to be populated through ApplyUpdate. Fails on a zero count.
  static Result<MinerSession> CreateStreaming(VertexId num_vertices,
                                              SessionOptions options = {});

  MinerSession(MinerSession&&) = default;
  MinerSession& operator=(MinerSession&&) = default;

  VertexId num_vertices() const { return num_vertices_; }

  /// \brief Adds `delta` to the weight of undirected edge {u,v} on `side`.
  ///
  /// O(1); the graphs are refreshed lazily at the next query. A small batch
  /// (see SessionOptions::patch_rebuild_ratio) is folded by the O(Δ) patch
  /// path: the CSR content is spliced, and this session's cached pipelines
  /// are delta-patched and *republished* under the refreshed fingerprint —
  /// the next query hits the cache instead of rebuilding. Larger batches
  /// fall back to a full rebuild whose next queries prepare fresh entries.
  /// Either way the move is copy-on-write: other sessions sharing the cache
  /// — and snapshots pinned by in-flight solves — keep the old, immutable
  /// entries. Fails on self-loops, out-of-range endpoints, or non-finite
  /// deltas.
  Status ApplyUpdate(UpdateSide side, VertexId u, VertexId v, double delta);

  /// The validation ApplyUpdate performs, exposed so queueing layers
  /// (api/mining_service.h) can reject bad updates eagerly and treat the
  /// deferred apply as infallible.
  static Status ValidateUpdate(VertexId num_vertices, VertexId u, VertexId v,
                               double delta);

  /// \brief Executes one mining request. See MiningRequest for semantics.
  Result<MiningResponse> Mine(const MiningRequest& request);

  /// \brief Mine with cooperative cancellation: the solve polls `cancel`
  /// at coarse safe points (between measures; between NewSEA seed chunks)
  /// and returns Status::Cancelled once it fires, leaving the session fully
  /// reusable — no partial result is kept, the warm-start seed is untouched,
  /// and a subsequent identical request returns the exact uncancelled
  /// answer. `cancel` may be null (equivalent to Mine(request)).
  Result<MiningResponse> Mine(const MiningRequest& request,
                              const CancelToken* cancel);

  /// \brief Executes independent requests on a worker pool, reusing the
  /// pipeline cache across them.
  ///
  /// Responses are positionally aligned with `requests`; the first failing
  /// request's status (in index order) is returned on error. For requests
  /// with warm_start off (the default) the responses are — apart from the
  /// telemetry wall-times — bit-identical to mining the same requests
  /// sequentially with Mine(). Warm-start seeds are frozen at batch entry,
  /// so a warm_start request sees the seed from before the batch rather
  /// than one evolved by earlier requests in it.
  Result<std::vector<MiningResponse>> MineAll(
      std::span<const MiningRequest> requests);

  /// \brief Copy of the difference graph D = A2 − α·A1 (swapped when
  /// `flip`), without discretize/clamp — for inspection and export. Shares
  /// the pipeline cache with Mine.
  Result<Graph> DifferenceSnapshot(double alpha = 1.0, bool flip = false);

  /// \brief Copy of the difference graph exactly as `request` would mine it,
  /// including its discretize/clamp steps.
  Result<Graph> DifferenceSnapshot(const MiningRequest& request);

  /// Streaming updates accepted so far.
  uint64_t num_updates() const { return num_updates_; }
  /// Difference graphs *this session* materialized so far (flat across
  /// cached queries — including queries served by entries another session
  /// sharing the cache prepared, and across patched flushes, which splice
  /// cached differences instead of materializing fresh ones).
  uint64_t num_rebuilds() const { return num_rebuilds_; }
  /// Pending-update flushes folded by the O(Δ) patch path.
  uint64_t num_update_patches() const { return num_update_patches_; }
  /// Pending-update flushes that took the full-rebuild fallback (batch past
  /// the Δ/m crossover, the initial bulk load, or patching disabled).
  uint64_t num_update_rebuilds() const { return num_update_rebuilds_; }
  /// Cached pipeline entries delta-patched and republished under this
  /// session's new fingerprint across all patched flushes.
  uint64_t num_republished_entries() const { return num_republished_; }
  /// Pipelines currently resident in the cache for this session's graphs.
  size_t num_cached_pipelines() const {
    return cache_->EntriesFor(graph_fingerprint_);
  }

  /// The cache preparing this session's pipelines (private or shared);
  /// never null. Exposes hit/miss/bytes via PipelineCache::stats.
  const std::shared_ptr<PipelineCache>& pipeline_cache() const {
    return cache_;
  }

  /// \brief Re-attaches the session to `cache` (non-null) for all
  /// subsequent queries; the previous cache keeps any entries it holds.
  /// Used by MiningService to apply MiningServiceOptions::shared_cache.
  void UsePipelineCache(std::shared_ptr<PipelineCache> cache);

  /// \brief Attaches the persistent `store` (non-null) and warm-boots from
  /// it: every valid stored pipeline of this session's graph pair is
  /// hydrated into the pipeline cache, and subsequent builds/upgrades/
  /// republishes are written back asynchronously. See
  /// SessionOptions::artifact_store.
  void UseArtifactStore(std::shared_ptr<ArtifactStore> store);

  /// \brief Runs all subsequent batched / intra-parallel solves on the
  /// shared pool `pool` (non-null) instead of the session's private pool.
  /// Used by the multi-tenant MiningService so tenant sessions share one
  /// fixed worker set; see SessionOptions::worker_pool.
  void UseWorkerPool(std::shared_ptr<ThreadPool> pool);

  /// The attached persistent store; null when the session is memory-only.
  const std::shared_ptr<ArtifactStore>& artifact_store() const {
    return store_;
  }

  /// Pipelines this session served from the store: warm-boot hydrations
  /// plus lazy per-key loads (including difference-only records upgraded
  /// with GA artifacts in memory).
  uint64_t num_store_hits() const { return store_hits_; }
  /// Pipelines this session asked the store for and had to build cold.
  uint64_t num_store_misses() const { return store_misses_; }

  /// \brief Re-evaluates the degradation ladder against the attached
  /// store's failure counters and returns the (possibly advanced) state —
  /// detaching the store when the failure count crossed
  /// SessionOptions::store_failure_threshold. Every Mine/MineAll runs this
  /// on entry; callers that just flushed a store can invoke it directly to
  /// observe the transition without mining.
  HealthState RefreshHealth();

  /// Current position on the degradation ladder (as of the last
  /// RefreshHealth / Mine / MineAll).
  HealthState health() const { return health_; }
  /// Ladder transitions over the session's lifetime.
  uint64_t num_health_transitions() const { return health_transitions_; }
  /// Store failure counters as last snapshotted by RefreshHealth — retained
  /// across a store-offline detach, unlike store_->stats().
  uint64_t num_store_write_errors() const { return store_write_errors_; }
  uint64_t num_store_retries() const { return store_retries_; }

  /// Drops this session's cached pipelines from the cache; they
  /// re-materialize on demand. Entries of other datasets in a shared cache
  /// are untouched (and pinned snapshots stay valid).
  void InvalidateCaches() { cache_->EraseFingerprint(graph_fingerprint_); }
  /// Forgets the warm-start seed carried between DCSGA queries.
  void ClearWarmStart() { warm_support_.clear(); }

 private:
  // One side's pending batch entry, canonicalized to u < v.
  struct PendingDelta {
    VertexId u;
    VertexId v;
    double delta;
  };

  MinerSession(VertexId num_vertices, Graph g1, Graph g2,
               SessionOptions options);

  // One side's pending map in ascending PackVertexPair order — the batch
  // order both flush paths fold deterministically.
  static std::vector<PendingDelta> SortedPending(
      const std::unordered_map<uint64_t, double>& pending);

  // Folds pending streaming deltas into g1_/g2_ when dirty; refreshes the
  // graph fingerprint (copy-on-write invalidation) and, on a private cache,
  // drops the now-unreachable entries. Small batches (see
  // SessionOptions::patch_rebuild_ratio) take the O(Δ) patch path; the rest
  // take the full rebuild. Both fold the batch in sorted PackVertexPair
  // order, so the result is independent of hash-map iteration order.
  Status FlushUpdates();

  // The O(Δ) path: folds both sides' batches into the base-graph overlays
  // (maintaining the fingerprint accumulators), then delta-patches every
  // cached pipeline of `stale_fingerprint` and republishes it under the
  // refreshed fingerprint. The base CSR arrays are *not* copied here — the
  // untouched spans are shared by leaving them in place and recording the
  // changed pairs in the overlay; MaterializeBaseGraphs splices lazily.
  void PatchGraphsAndPipelines(const std::vector<PendingDelta>& d1,
                               const std::vector<PendingDelta>& d2,
                               uint64_t stale_fingerprint);

  // The weight of {u,v} in one side's current content: the overlay entry
  // when present (values within zero_eps of 0 read as absent, mirroring the
  // builder's drop rule), the CSR weight otherwise.
  double OverlaidWeight(const Graph& base,
                        const std::unordered_map<uint64_t, double>& overlay,
                        VertexId u, VertexId v) const;

  // Splices any pending overlays into the CSR graphs (bit-identical to a
  // rebuild of the same content) and clears them. Called before anything
  // that needs a real CSR of the current content: a cold pipeline build,
  // the full-rebuild flush path, or overlay growth past the crossover.
  void MaterializeBaseGraphs();

  // Delta-derives the patched counterpart of one cached pipeline: re-derives
  // D(u,v) (and its discretize/clamp image) from the already-patched
  // g1_/g2_ for exactly the changed pairs, splices difference and GD+, and
  // maintains the smart-init bounds. Bit-identical to a from-scratch
  // preparation on the patched graphs.
  PreparedPipeline PatchPipeline(
      const PreparedPipeline& old_pipeline, const PipelineCacheKey& key,
      std::span<const std::pair<VertexId, VertexId>> changed_pairs) const;

  // The session's current pair fingerprint, derived from the incrementally
  // maintained per-graph content accumulators.
  uint64_t CurrentFingerprint() const;

  // Returns the cache snapshot for the request's pipeline fields, building
  // (at most once across sessions) as needed. `need_ga` also prepares the
  // DCSGA artifacts; `reused` reports whether the difference graph came
  // from the cache.
  Result<PipelineCache::Snapshot> PreparePipeline(const MiningRequest& request,
                                                  bool need_ga, bool* reused);

  // True when `request`'s solve path can consume the shared pool (the
  // intra-parallelism knob is set and a path exists that honors it).
  static bool WantsIntraParallelism(const MiningRequest& request);

  // True when the request needs only the builtin average-degree solve, so
  // pipeline preparation can skip the DCSGA artifacts.
  static bool AverageDegreeOnly(const MiningRequest& request);

  // The session's total thread budget (max_parallelism, hardware-resolved).
  size_t ParallelismBudget() const;

  // Lazily spawns (or grows) the shared pool to `concurrency` slots, capped
  // at ParallelismBudget(); the calling thread is one of the slots, so the
  // pool gets concurrency - 1 workers. Never shrinks an existing pool.
  ThreadPool* EnsurePool(size_t concurrency);

  // Runs the solvers for one prepared request. Const w.r.t. session state so
  // MineAll can call it from worker threads; warm seeds, the shared pool,
  // the intra-request worker budget and the (nullable) cancellation token
  // are passed in.
  Status Solve(const PreparedPipeline& pipeline, const MiningRequest& request,
               std::span<const VertexId> warm_support, ThreadPool* pool,
               uint32_t parallelism_budget, const CancelToken* cancel,
               MiningResponse* response) const;

  // Copies the cache's hit/miss/bytes counters into `telemetry`.
  void FillCacheTelemetry(MiningTelemetry* telemetry) const;

  VertexId num_vertices_;
  SessionOptions options_;
  Graph g1_{0};
  Graph g2_{0};
  // Patched-but-not-yet-spliced base-graph content: absolute weights per
  // packed pair, layered over g1_/g2_ (the session's true graphs are
  // CSR ⊕ overlay). Keeping the batch here instead of copying the CSR
  // arrays is what makes a small flush O(Δ); see MaterializeBaseGraphs.
  std::unordered_map<uint64_t, double> overlay_g1_;
  std::unordered_map<uint64_t, double> overlay_g2_;
  // Pending streaming deltas keyed by packed (min,max) vertex pair.
  std::unordered_map<uint64_t, double> pending_g1_;
  std::unordered_map<uint64_t, double> pending_g2_;
  bool graphs_dirty_ = false;
  // The cache preparing this session's pipelines; private unless
  // SessionOptions::pipeline_cache (or UsePipelineCache) attached a shared
  // one. Never null.
  std::shared_ptr<PipelineCache> cache_;
  bool private_cache_ = true;
  // The attached persistent store (SessionOptions::artifact_store or
  // UseArtifactStore); null for a memory-only session.
  std::shared_ptr<ArtifactStore> store_;
  uint64_t store_hits_ = 0;
  uint64_t store_misses_ = 0;
  // Degradation-ladder state (see RefreshHealth): current rung, lifetime
  // transition count, and the last observed store failure counters (kept
  // here so telemetry survives a store-offline detach).
  HealthState health_ = HealthState::kHealthy;
  uint64_t health_transitions_ = 0;
  uint64_t store_write_errors_ = 0;
  uint64_t store_retries_ = 0;
  // PipelineGraphFingerprint of (g1_, g2_) after the last flush — the
  // content half of this session's cache keys — plus the per-graph content
  // accumulators it is derived from (Graph::ContentAccumulator), maintained
  // incrementally by the patch path.
  uint64_t graph_fingerprint_ = 0;
  uint64_t g1_accumulator_ = 0;
  uint64_t g2_accumulator_ = 0;
  // Shared worker pool for MineAll batches and intra-request NewSEA seed
  // sharding; created lazily by EnsurePool.
  std::unique_ptr<ThreadPool> pool_;
  uint64_t num_updates_ = 0;
  uint64_t num_rebuilds_ = 0;
  uint64_t num_update_patches_ = 0;
  uint64_t num_update_rebuilds_ = 0;
  uint64_t num_republished_ = 0;
  // Support of the most recent DCSGA answer, offered to warm_start requests.
  std::vector<VertexId> warm_support_;
};

}  // namespace dcs

#endif  // DCS_API_MINER_SESSION_H_
