// MinerSession — the session-oriented entry point of libdcs.
//
// A session owns the two input graphs G1/G2 (or grows them from a stream of
// weight updates), materializes each requested difference-graph pipeline
// (alpha/flip/discretize/clamp) at most once, lazily derives the DCSGA
// artifacts — GD+ and the §V-D smart-initialization bounds — per pipeline,
// and dispatches measures to solvers through the SolverRegistry. This is the
// one API tools, examples and services program against; core/ and densest/
// are internal layers behind it.
//
// Scale path: the session owns one shared ThreadPool (util/thread_pool.h).
// MineAll runs independent requests on it against the read-only pipeline
// cache, and a single request's NewSEA solve can additionally shard its
// seed loop across the same pool (intra-request parallelism, bit-identical
// to sequential — see core/newsea.h). MineAll splits the pool budget
// between the two levels.

#ifndef DCS_API_MINER_SESSION_H_
#define DCS_API_MINER_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "api/mining.h"
#include "graph/graph.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dcs {

/// Session-level tuning.
struct SessionOptions {
  /// Distinct difference-graph pipelines kept materialized (FIFO eviction).
  size_t max_cached_pipelines = 8;
  /// Total thread budget of the session's shared worker pool; 0 =
  /// std::thread::hardware_concurrency(). MineAll splits it between
  /// concurrent requests (inter) and each request's NewSEA seed shards
  /// (intra, granted to requests whose ga_solver.parallelism is 0 = auto);
  /// Mine grants the whole budget to its one request. The pool is spawned
  /// lazily on the first batched or intra-parallel solve.
  uint32_t max_parallelism = 0;
  /// Magnitude below which an accumulated weight counts as cancelled when
  /// streaming updates are folded into the graphs.
  double zero_eps = 1e-12;
};

/// \brief A mining session over a pair of graphs on a fixed vertex universe.
///
/// Single-threaded by design except for MineAll's internal worker pool; one
/// session per serving thread is the intended deployment shape.
class MinerSession {
 public:
  /// Batch construction: both graphs up front. Fails when the vertex counts
  /// differ or are zero.
  static Result<MinerSession> Create(Graph g1, Graph g2,
                                     SessionOptions options = {});

  /// Streaming construction: an empty G1/G2 pair over `num_vertices`
  /// vertices, to be populated through ApplyUpdate. Fails on a zero count.
  static Result<MinerSession> CreateStreaming(VertexId num_vertices,
                                              SessionOptions options = {});

  MinerSession(MinerSession&&) = default;
  MinerSession& operator=(MinerSession&&) = default;

  VertexId num_vertices() const { return num_vertices_; }

  /// \brief Adds `delta` to the weight of undirected edge {u,v} on `side`.
  ///
  /// O(1); the CSR graphs and every cached pipeline are refreshed lazily at
  /// the next query (dirty-snapshot invalidation). Fails on self-loops,
  /// out-of-range endpoints, or non-finite deltas.
  Status ApplyUpdate(UpdateSide side, VertexId u, VertexId v, double delta);

  /// The validation ApplyUpdate performs, exposed so queueing layers
  /// (api/mining_service.h) can reject bad updates eagerly and treat the
  /// deferred apply as infallible.
  static Status ValidateUpdate(VertexId num_vertices, VertexId u, VertexId v,
                               double delta);

  /// \brief Executes one mining request. See MiningRequest for semantics.
  Result<MiningResponse> Mine(const MiningRequest& request);

  /// \brief Mine with cooperative cancellation: the solve polls `cancel`
  /// at coarse safe points (between measures; between NewSEA seed chunks)
  /// and returns Status::Cancelled once it fires, leaving the session fully
  /// reusable — no partial result is kept, the warm-start seed is untouched,
  /// and a subsequent identical request returns the exact uncancelled
  /// answer. `cancel` may be null (equivalent to Mine(request)).
  Result<MiningResponse> Mine(const MiningRequest& request,
                              const CancelToken* cancel);

  /// \brief Executes independent requests on a worker pool, reusing the
  /// pipeline cache across them.
  ///
  /// Responses are positionally aligned with `requests`; the first failing
  /// request's status (in index order) is returned on error. For requests
  /// with warm_start off (the default) the responses are — apart from the
  /// telemetry wall-times — bit-identical to mining the same requests
  /// sequentially with Mine(). Warm-start seeds are frozen at batch entry,
  /// so a warm_start request sees the seed from before the batch rather
  /// than one evolved by earlier requests in it.
  Result<std::vector<MiningResponse>> MineAll(
      std::span<const MiningRequest> requests);

  /// \brief Copy of the difference graph D = A2 − α·A1 (swapped when
  /// `flip`), without discretize/clamp — for inspection and export. Shares
  /// the pipeline cache with Mine.
  Result<Graph> DifferenceSnapshot(double alpha = 1.0, bool flip = false);

  /// \brief Copy of the difference graph exactly as `request` would mine it,
  /// including its discretize/clamp steps.
  Result<Graph> DifferenceSnapshot(const MiningRequest& request);

  /// Streaming updates accepted so far.
  uint64_t num_updates() const { return num_updates_; }
  /// Difference graphs materialized so far (flat across cached queries).
  uint64_t num_rebuilds() const { return num_rebuilds_; }
  /// Pipelines currently materialized.
  size_t num_cached_pipelines() const { return pipelines_.size(); }

  /// Drops every cached pipeline (they re-materialize on demand).
  void InvalidateCaches() { pipelines_.clear(); }
  /// Forgets the warm-start seed carried between DCSGA queries.
  void ClearWarmStart() { warm_support_.clear(); }

 private:
  // The MiningRequest fields that determine the materialized difference
  // graph; equal keys share one cached pipeline.
  struct PipelineKey {
    double alpha = 1.0;
    bool flip = false;
    std::optional<DiscretizeSpec> discretize;
    std::optional<double> clamp_weights_above;

    static PipelineKey Of(const MiningRequest& request);
    friend bool operator==(const PipelineKey&, const PipelineKey&) = default;
  };

  // One materialized difference-graph pipeline plus its lazy DCSGA
  // artifacts.
  struct PreparedPipeline {
    PipelineKey key;
    Graph difference{0};
    bool has_ga_artifacts = false;
    Graph positive_part{0};
    SmartInitBounds smart_bounds;
    // GD+ passed the non-negativity scan once; solves against this pipeline
    // skip their own O(m) scan.
    bool validated_nonnegative = false;
  };

  MinerSession(VertexId num_vertices, Graph g1, Graph g2,
               SessionOptions options);

  // Folds pending streaming deltas into g1_/g2_ and clears the pipeline
  // cache when dirty.
  Status FlushUpdates();

  // Returns the cached pipeline for the request's pipeline fields, building
  // (and possibly evicting) as needed. The pointer stays valid until the
  // next ApplyUpdate/eviction. `reused` reports a cache hit.
  Result<PreparedPipeline*> PreparePipeline(const MiningRequest& request,
                                            bool* reused);

  // Derives GD+ and the smart-init bounds of `pipeline` once, including the
  // one-time non-negativity validation.
  void EnsureGaArtifacts(PreparedPipeline* pipeline);

  // True when `request`'s solve path can consume the shared pool (the
  // intra-parallelism knob is set and a path exists that honors it).
  static bool WantsIntraParallelism(const MiningRequest& request);

  // The session's total thread budget (max_parallelism, hardware-resolved).
  size_t ParallelismBudget() const;

  // Lazily spawns (or grows) the shared pool to `concurrency` slots, capped
  // at ParallelismBudget(); the calling thread is one of the slots, so the
  // pool gets concurrency - 1 workers. Never shrinks an existing pool.
  ThreadPool* EnsurePool(size_t concurrency);

  // Runs the solvers for one prepared request. Const w.r.t. session state so
  // MineAll can call it from worker threads; warm seeds, the shared pool,
  // the intra-request worker budget and the (nullable) cancellation token
  // are passed in.
  Status Solve(const PreparedPipeline& pipeline, const MiningRequest& request,
               std::span<const VertexId> warm_support, ThreadPool* pool,
               uint32_t parallelism_budget, const CancelToken* cancel,
               MiningResponse* response) const;

  VertexId num_vertices_;
  SessionOptions options_;
  Graph g1_{0};
  Graph g2_{0};
  // Pending streaming deltas keyed by packed (min,max) vertex pair.
  std::unordered_map<uint64_t, double> pending_g1_;
  std::unordered_map<uint64_t, double> pending_g2_;
  bool graphs_dirty_ = false;
  // FIFO cache; unique_ptr keeps PreparedPipeline* stable across growth.
  std::vector<std::unique_ptr<PreparedPipeline>> pipelines_;
  // While a MineAll batch is in flight, evicted pipelines are parked here so
  // that the batch's PreparedPipeline* stay valid; cleared when it returns.
  // Eviction order itself is unchanged, keeping cache state (and therefore
  // rebuild counters) identical to sequential mining.
  bool batch_in_flight_ = false;
  std::vector<std::unique_ptr<PreparedPipeline>> retired_;
  // Shared worker pool for MineAll batches and intra-request NewSEA seed
  // sharding; created lazily by EnsurePool.
  std::unique_ptr<ThreadPool> pool_;
  uint64_t num_updates_ = 0;
  uint64_t num_rebuilds_ = 0;
  // Support of the most recent DCSGA answer, offered to warm_start requests.
  std::vector<VertexId> warm_support_;
};

}  // namespace dcs

#endif  // DCS_API_MINER_SESSION_H_
