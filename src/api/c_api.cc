// Implementation of the C ABI (include/dcs_c_api.h) over the api/ facade.
//
// The boundary rules live here: every opaque handle wraps exactly one C++
// value, every entry point catches the NULL-handle cases before touching
// anything, and no exception or C++ type escapes — a Status crossing the
// boundary is flattened to its code, with the message parked in the
// service's last-error slot.

#include "dcs_c_api.h"

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "api/pipeline_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

// The C header promises vertex arrays as uint32_t; keep that in lockstep
// with the C++ vertex type.
static_assert(std::is_same_v<dcs::VertexId, uint32_t>,
              "dcs_c_api.h exposes VertexId as uint32_t");

extern "C" {

struct dcs_graph {
  dcs::Graph graph;
};

struct dcs_service {
  explicit dcs_service(dcs::MiningServiceOptions options)
      : service(std::move(options)) {}

  dcs::MiningService service;
  std::mutex error_mutex;
  std::string last_error;
};

struct dcs_response {
  dcs::MiningResponse response;
};

}  // extern "C"

namespace {

// Flattens a Status to its code, parking the message for
// dcs_service_last_error. `service` may be null (handle-validation
// failures have nowhere to park the message).
dcs_status_code FlattenStatus(dcs_service* service, const dcs::Status& status) {
  if (status.ok()) return DCS_OK;
  if (service != nullptr) {
    std::lock_guard<std::mutex> lock(service->error_mutex);
    service->last_error = status.ToString();
  }
  return static_cast<dcs_status_code>(status.code());
}

dcs_status_code InvalidHandle(dcs_service* service, const char* what) {
  return FlattenStatus(service, dcs::Status::InvalidArgument(
                                    std::string("null ") + what + " handle"));
}

// The C request carries a subset of MiningRequest; everything else keeps
// its C++ default. Returns InvalidArgument for an unmapped measure value
// so the error surfaces at submit time instead of as a failed job.
dcs::Result<dcs::MiningRequest> ToRequest(const dcs_mining_request& c) {
  dcs::MiningRequest request;
  switch (c.measure) {
    case DCS_MEASURE_AVERAGE_DEGREE:
      request.measure = dcs::Measure::kAverageDegree;
      break;
    case DCS_MEASURE_GRAPH_AFFINITY:
      request.measure = dcs::Measure::kGraphAffinity;
      break;
    case DCS_MEASURE_BOTH:
      request.measure = dcs::Measure::kBoth;
      break;
    default:
      return dcs::Status::InvalidArgument("unknown measure value " +
                                          std::to_string(c.measure));
  }
  request.alpha = c.alpha;
  request.flip = c.flip != 0;
  request.top_k = c.top_k;
  request.priority = c.priority;
  request.deadline_seconds = c.deadline_seconds;
  request.ga_solver.parallelism = c.parallelism;
  return request;
}

void ToJobStatus(const dcs::JobStatus& status, dcs_job_status* out) {
  out->id = status.id;
  out->tenant = status.tenant;
  out->state = static_cast<int32_t>(status.state);
  out->failure_code = static_cast<dcs_status_code>(status.failure.code());
  out->queue_seconds = status.queue_seconds;
  out->run_seconds = status.run_seconds;
  out->finish_index = status.finish_index;
}

const std::vector<dcs::RankedSubgraph>* SubgraphsFor(
    const dcs_response* response, int32_t measure) {
  switch (measure) {
    case DCS_MEASURE_AVERAGE_DEGREE:
      return &response->response.average_degree;
    case DCS_MEASURE_GRAPH_AFFINITY:
      return &response->response.graph_affinity;
    default:
      return nullptr;
  }
}

}  // namespace

extern "C" {

const char* dcs_status_code_name(dcs_status_code code) {
  if (code < 0 || code > DCS_RESOURCE_EXHAUSTED) return "unknown";
  return dcs::StatusCodeToString(static_cast<dcs::StatusCode>(code));
}

const char* dcs_job_state_name(int32_t state) {
  if (state < 0 || state > DCS_JOB_CANCELLED) return "unknown";
  return dcs::JobStateToString(static_cast<dcs::JobState>(state));
}

void dcs_service_options_init(dcs_service_options* options) {
  if (options == nullptr) return;
  const dcs::MiningServiceOptions defaults;
  options->max_queued_jobs = defaults.max_queued_jobs;
  options->max_total_queued_jobs = defaults.max_total_queued_jobs;
  options->max_queued_request_bytes = defaults.max_queued_request_bytes;
  options->num_executors = defaults.num_executors;
  options->start_paused = defaults.start_paused ? 1 : 0;
  options->max_finished_jobs = defaults.max_finished_jobs;
  options->share_pipeline_cache = 0;
  options->share_worker_pool = 0;
  options->journal_path = nullptr;
  options->journal_durability_always = 0;
  options->journal_group_commit_ms = 0.0;
}

void dcs_service_options_set_journal(dcs_service_options* options,
                                     const char* path,
                                     int32_t durability_always,
                                     double group_commit_ms) {
  if (options == nullptr) return;
  options->journal_path = path;
  options->journal_durability_always = durability_always;
  options->journal_group_commit_ms = group_commit_ms;
}

void dcs_mining_request_init(dcs_mining_request* request) {
  if (request == nullptr) return;
  const dcs::MiningRequest defaults;
  request->measure = DCS_MEASURE_BOTH;
  request->alpha = defaults.alpha;
  request->flip = defaults.flip ? 1 : 0;
  request->top_k = defaults.top_k;
  request->priority = defaults.priority;
  request->deadline_seconds = defaults.deadline_seconds;
  // Sequential by default: the C caller opts into intra-request
  // parallelism explicitly, mirroring DcsgaOptions::parallelism == 1.
  request->parallelism = 1;
}

dcs_status_code dcs_graph_create(uint32_t num_vertices, const uint32_t* us,
                                 const uint32_t* vs, const double* weights,
                                 size_t num_edges, dcs_graph** out_graph) {
  if (out_graph == nullptr) return DCS_INVALID_ARGUMENT;
  *out_graph = nullptr;
  if (num_edges != 0 &&
      (us == nullptr || vs == nullptr || weights == nullptr)) {
    return DCS_INVALID_ARGUMENT;
  }
  std::vector<dcs::WeightedEdge> edges;
  edges.reserve(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edges.push_back(dcs::WeightedEdge{us[i], vs[i], weights[i]});
  }
  dcs::Result<dcs::Graph> graph = dcs::BuildGraphFromEdges(
      num_vertices, std::span<const dcs::WeightedEdge>(edges));
  if (!graph.ok()) {
    return static_cast<dcs_status_code>(graph.status().code());
  }
  *out_graph = new dcs_graph{std::move(*graph)};
  return DCS_OK;
}

void dcs_graph_free(dcs_graph** graph) {
  if (graph == nullptr || *graph == nullptr) return;
  delete *graph;
  *graph = nullptr;
}

dcs_status_code dcs_service_create(const dcs_service_options* options,
                                   dcs_service** out_service) {
  if (out_service == nullptr) return DCS_INVALID_ARGUMENT;
  *out_service = nullptr;
  dcs_service_options defaults;
  dcs_service_options_init(&defaults);
  if (options == nullptr) options = &defaults;
  dcs::MiningServiceOptions opts;
  opts.max_queued_jobs = options->max_queued_jobs;
  opts.max_total_queued_jobs = options->max_total_queued_jobs;
  opts.max_queued_request_bytes = options->max_queued_request_bytes;
  opts.num_executors = options->num_executors;
  opts.start_paused = options->start_paused != 0;
  opts.max_finished_jobs = options->max_finished_jobs;
  if (options->share_pipeline_cache != 0) {
    opts.shared_cache = std::make_shared<dcs::PipelineCache>();
  }
  if (options->share_worker_pool != 0) {
    opts.worker_pool = std::make_shared<dcs::ThreadPool>(
        dcs::ThreadPool::DefaultConcurrency() - 1);
  }
  if (options->journal_path != nullptr && options->journal_path[0] != '\0') {
    opts.journal_path = options->journal_path;
    opts.journal_options.durability =
        options->journal_durability_always != 0
            ? dcs::JournalDurability::kAlways
            : dcs::JournalDurability::kGroupCommit;
    if (options->journal_group_commit_ms > 0.0) {
      opts.journal_options.flush_interval_ms =
          options->journal_group_commit_ms;
    }
  }
  *out_service = new dcs_service(std::move(opts));
  return DCS_OK;
}

uint64_t dcs_service_num_recovered_jobs(const dcs_service* service) {
  if (service == nullptr) return 0;
  return service->service.num_recovered_jobs();
}

dcs_status_code dcs_service_recovered_job(dcs_service* service,
                                          uint64_t index, uint64_t* out_job) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (out_job == nullptr) {
    return FlattenStatus(service, dcs::Status::InvalidArgument(
                                      "null out_job pointer"));
  }
  const std::vector<dcs::JobId> recovered = service->service.recovered_jobs();
  if (index >= recovered.size()) {
    return FlattenStatus(
        service, dcs::Status::OutOfRange(
                     "recovered-job index " + std::to_string(index) +
                     " past " + std::to_string(recovered.size())));
  }
  *out_job = recovered[index];
  return DCS_OK;
}

void dcs_service_free(dcs_service** service) {
  if (service == nullptr || *service == nullptr) return;
  delete *service;
  *service = nullptr;
}

const char* dcs_service_last_error(const dcs_service* service) {
  if (service == nullptr) return "null service handle";
  // The caller owns the race window (last_error is valid until the next
  // failing call); the mutex only orders the string assignment itself.
  std::lock_guard<std::mutex> lock(
      const_cast<dcs_service*>(service)->error_mutex);
  return service->last_error.c_str();
}

dcs_status_code dcs_service_add_tenant(dcs_service* service,
                                       const dcs_graph* g1,
                                       const dcs_graph* g2, uint32_t weight,
                                       size_t max_queued_jobs,
                                       uint32_t* out_tenant) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (g1 == nullptr || g2 == nullptr) return InvalidHandle(service, "graph");
  if (out_tenant == nullptr) {
    return FlattenStatus(service, dcs::Status::InvalidArgument(
                                      "null out_tenant pointer"));
  }
  dcs::Result<dcs::MinerSession> session =
      dcs::MinerSession::Create(g1->graph, g2->graph);
  if (!session.ok()) return FlattenStatus(service, session.status());
  dcs::TenantOptions tenant_options;
  tenant_options.weight = weight;
  tenant_options.max_queued_jobs = max_queued_jobs;
  dcs::Result<dcs::TenantId> tenant =
      service->service.AddTenant(std::move(*session), tenant_options);
  if (!tenant.ok()) return FlattenStatus(service, tenant.status());
  *out_tenant = *tenant;
  return DCS_OK;
}

dcs_status_code dcs_service_submit(dcs_service* service, uint32_t tenant,
                                   const dcs_mining_request* request,
                                   uint64_t* out_job) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (request == nullptr || out_job == nullptr) {
    return FlattenStatus(service, dcs::Status::InvalidArgument(
                                      "null request or out_job pointer"));
  }
  dcs::Result<dcs::MiningRequest> mapped = ToRequest(*request);
  if (!mapped.ok()) return FlattenStatus(service, mapped.status());
  dcs::Result<dcs::JobId> job =
      service->service.Submit(tenant, std::move(*mapped));
  if (!job.ok()) return FlattenStatus(service, job.status());
  *out_job = *job;
  return DCS_OK;
}

dcs_status_code dcs_service_apply_update(dcs_service* service,
                                         uint32_t tenant, int32_t side,
                                         uint32_t u, uint32_t v,
                                         double delta) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (side != DCS_UPDATE_G1 && side != DCS_UPDATE_G2) {
    return FlattenStatus(service,
                         dcs::Status::InvalidArgument(
                             "unknown update side " + std::to_string(side)));
  }
  return FlattenStatus(
      service, service->service.ApplyUpdate(
                   tenant, static_cast<dcs::UpdateSide>(side), u, v, delta));
}

dcs_status_code dcs_service_poll(dcs_service* service, uint64_t job,
                                 dcs_job_status* out_status) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (out_status == nullptr) {
    return FlattenStatus(service, dcs::Status::InvalidArgument(
                                      "null out_status pointer"));
  }
  dcs::Result<dcs::JobStatus> status = service->service.Poll(job);
  if (!status.ok()) return FlattenStatus(service, status.status());
  ToJobStatus(*status, out_status);
  return DCS_OK;
}

dcs_status_code dcs_service_wait(dcs_service* service, uint64_t job,
                                 dcs_job_status* out_status) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (out_status == nullptr) {
    return FlattenStatus(service, dcs::Status::InvalidArgument(
                                      "null out_status pointer"));
  }
  dcs::Result<dcs::JobStatus> status = service->service.Wait(job);
  if (!status.ok()) return FlattenStatus(service, status.status());
  ToJobStatus(*status, out_status);
  return DCS_OK;
}

dcs_status_code dcs_service_cancel(dcs_service* service, uint64_t job,
                                   dcs_job_status* out_status) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  dcs::Result<dcs::JobStatus> status = service->service.Cancel(job);
  if (!status.ok()) return FlattenStatus(service, status.status());
  if (out_status != nullptr) ToJobStatus(*status, out_status);
  return DCS_OK;
}

dcs_status_code dcs_service_resume(dcs_service* service) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  service->service.Resume();
  return DCS_OK;
}

dcs_status_code dcs_service_drain(dcs_service* service) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  service->service.Drain();
  return DCS_OK;
}

dcs_status_code dcs_service_take_response(dcs_service* service, uint64_t job,
                                          dcs_response** out_response) {
  if (service == nullptr) return InvalidHandle(nullptr, "service");
  if (out_response == nullptr) {
    return FlattenStatus(service, dcs::Status::InvalidArgument(
                                      "null out_response pointer"));
  }
  *out_response = nullptr;
  dcs::Result<dcs::JobStatus> status = service->service.Wait(job);
  if (!status.ok()) return FlattenStatus(service, status.status());
  switch (status->state) {
    case dcs::JobState::kDone:
      break;
    case dcs::JobState::kFailed:
      return FlattenStatus(service, status->failure);
    case dcs::JobState::kCancelled:
      return FlattenStatus(
          service, dcs::Status::Cancelled("job " + std::to_string(job) +
                                          " was cancelled"));
    default:
      return FlattenStatus(service, dcs::Status::Internal(
                                        "non-terminal job after Wait"));
  }
  *out_response = new dcs_response{std::move(status->response)};
  return DCS_OK;
}

size_t dcs_response_num_subgraphs(const dcs_response* response,
                                  int32_t measure) {
  if (response == nullptr) return 0;
  const std::vector<dcs::RankedSubgraph>* subgraphs =
      SubgraphsFor(response, measure);
  return subgraphs != nullptr ? subgraphs->size() : 0;
}

dcs_status_code dcs_response_subgraph(const dcs_response* response,
                                      int32_t measure, size_t index,
                                      dcs_subgraph_view* out_view) {
  if (response == nullptr || out_view == nullptr) return DCS_INVALID_ARGUMENT;
  const std::vector<dcs::RankedSubgraph>* subgraphs =
      SubgraphsFor(response, measure);
  if (subgraphs == nullptr) return DCS_INVALID_ARGUMENT;
  if (index >= subgraphs->size()) return DCS_OUT_OF_RANGE;
  const dcs::RankedSubgraph& subgraph = (*subgraphs)[index];
  out_view->vertices = subgraph.vertices.data();
  out_view->num_vertices = subgraph.vertices.size();
  out_view->value = subgraph.value;
  return DCS_OK;
}

void dcs_response_free(dcs_response** response) {
  if (response == nullptr || *response == nullptr) return;
  delete *response;
  *response = nullptr;
}

}  // extern "C"
