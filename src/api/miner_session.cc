#include "api/miner_session.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "api/solver_registry.h"
#include "core/newsea.h"
#include "graph/difference.h"
#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dcs {

MinerSession::MinerSession(VertexId num_vertices, Graph g1, Graph g2,
                           SessionOptions options)
    : num_vertices_(num_vertices),
      options_(options),
      g1_(std::move(g1)),
      g2_(std::move(g2)) {
  if (options_.pipeline_cache != nullptr) {
    cache_ = options_.pipeline_cache;
    private_cache_ = false;
  } else {
    PipelineCacheOptions cache_options;
    // 0 meant "evict everything but the fresh pipeline" before the cache
    // extraction, not PipelineCacheOptions' 0 = unbounded; keep that.
    cache_options.max_entries =
        std::max<size_t>(1, options_.max_cached_pipelines);
    cache_ = std::make_shared<PipelineCache>(cache_options);
    private_cache_ = true;
  }
  graph_fingerprint_ = PipelineGraphFingerprint(g1_, g2_);
}

Result<MinerSession> MinerSession::Create(Graph g1, Graph g2,
                                          SessionOptions options) {
  if (g1.NumVertices() != g2.NumVertices()) {
    return Status::InvalidArgument(
        "G1 and G2 must share one vertex set (got " +
        std::to_string(g1.NumVertices()) + " vs " +
        std::to_string(g2.NumVertices()) + " vertices)");
  }
  if (g1.NumVertices() == 0) {
    return Status::InvalidArgument("session needs at least one vertex");
  }
  // Read the count before the same call expression moves g1 (argument
  // evaluation order is unspecified).
  const VertexId num_vertices = g1.NumVertices();
  return MinerSession(num_vertices, std::move(g1), std::move(g2), options);
}

Result<MinerSession> MinerSession::CreateStreaming(VertexId num_vertices,
                                                   SessionOptions options) {
  if (num_vertices == 0) {
    return Status::InvalidArgument("session needs at least one vertex");
  }
  return MinerSession(num_vertices, Graph(num_vertices), Graph(num_vertices),
                      options);
}

void MinerSession::UsePipelineCache(std::shared_ptr<PipelineCache> cache) {
  DCS_CHECK(cache != nullptr) << "UsePipelineCache needs a cache";
  cache_ = std::move(cache);
  private_cache_ = false;
}

Status MinerSession::ValidateUpdate(VertexId num_vertices, VertexId u,
                                    VertexId v, double delta) {
  if (u == v) {
    return Status::InvalidArgument("self-loop update on vertex " +
                                   std::to_string(u));
  }
  if (u >= num_vertices || v >= num_vertices) {
    return Status::OutOfRange("update endpoint out of range");
  }
  if (!std::isfinite(delta)) {
    return Status::InvalidArgument("non-finite update delta");
  }
  return Status::OK();
}

Status MinerSession::ApplyUpdate(UpdateSide side, VertexId u, VertexId v,
                                 double delta) {
  DCS_RETURN_NOT_OK(ValidateUpdate(num_vertices_, u, v, delta));
  auto& pending = side == UpdateSide::kG1 ? pending_g1_ : pending_g2_;
  pending[PackVertexPair(u, v)] += delta;
  ++num_updates_;
  graphs_dirty_ = true;
  return Status::OK();
}

Status MinerSession::FlushUpdates() {
  if (!graphs_dirty_) return Status::OK();
  auto rebuild =
      [&](const Graph& base,
          std::unordered_map<uint64_t, double>* pending) -> Result<Graph> {
    GraphBuilder builder(num_vertices_);
    for (const Edge& e : base.UndirectedEdges()) {
      builder.AddEdgeUnchecked(e.u, e.v, e.weight);
    }
    for (const auto& [key, delta] : *pending) {
      builder.AddEdgeUnchecked(static_cast<VertexId>(key >> 32),
                               static_cast<VertexId>(key & 0xFFFFFFFFull),
                               delta);
    }
    return builder.Build(options_.zero_eps);
  };
  if (!pending_g1_.empty()) {
    DCS_ASSIGN_OR_RETURN(g1_, rebuild(g1_, &pending_g1_));
    pending_g1_.clear();
  }
  if (!pending_g2_.empty()) {
    DCS_ASSIGN_OR_RETURN(g2_, rebuild(g2_, &pending_g2_));
    pending_g2_.clear();
  }
  // Copy-on-write invalidation: the refreshed fingerprint redirects this
  // session to fresh cache keys. A private cache holds no other session's
  // entries, so the stale ones are dropped eagerly (today's memory profile);
  // in a shared cache they may still serve sessions whose graphs kept the
  // old content, and age out via LRU otherwise.
  const uint64_t stale_fingerprint = graph_fingerprint_;
  graph_fingerprint_ = PipelineGraphFingerprint(g1_, g2_);
  if (private_cache_) cache_->EraseFingerprint(stale_fingerprint);
  graphs_dirty_ = false;
  return Status::OK();
}

Result<PipelineCache::Snapshot> MinerSession::PreparePipeline(
    const MiningRequest& request, bool need_ga, bool* reused) {
  DCS_RETURN_NOT_OK(FlushUpdates());
  PipelineCacheKey key;
  key.graph_fingerprint = graph_fingerprint_;
  key.alpha = request.alpha;
  key.flip = request.flip;
  key.discretize = request.discretize;
  key.clamp_weights_above = request.clamp_weights_above;

  // Runs on this thread inside GetOrPrepare (without the cache lock), at
  // most once per key across every session attached to the cache.
  bool built_difference = false;
  auto build =
      [&](const PreparedPipeline* reuse) -> Result<PreparedPipeline> {
    PreparedPipeline out;
    if (reuse != nullptr) {
      // GA upgrade of a difference-only entry: reuse the cached graph.
      out.difference = reuse->difference;
    } else {
      const Graph& first = request.flip ? g2_ : g1_;
      const Graph& second = request.flip ? g1_ : g2_;
      DCS_ASSIGN_OR_RETURN(out.difference,
                           BuildDifferenceGraph(first, second, request.alpha));
      if (request.discretize) {
        DCS_ASSIGN_OR_RETURN(
            out.difference,
            DiscretizeWeights(out.difference, *request.discretize));
      }
      if (request.clamp_weights_above) {
        out.difference =
            out.difference.WeightsClampedAbove(*request.clamp_weights_above);
      }
      built_difference = true;
    }
    if (need_ga) {
      out.positive_part = out.difference.PositivePart();
      out.smart_bounds = ComputeSmartInitBounds(out.positive_part);
      // Validate once per prepared pipeline; every solve against it then
      // skips the per-call O(m) scan. PositivePart output cannot fail the
      // scan, so a failure here is a library bug, not bad input.
      DCS_CHECK(ValidateNonNegativeWeights(out.positive_part).ok());
      out.validated_nonnegative = true;
      out.has_ga_artifacts = true;
    }
    return out;
  };
  DCS_ASSIGN_OR_RETURN(PipelineCache::Snapshot snapshot,
                       cache_->GetOrPrepare(key, need_ga, build, reused));
  if (built_difference) ++num_rebuilds_;
  return snapshot;
}

// True when the request needs only the builtin average-degree solve. Custom
// solvers may want GD+ regardless of measure, so artifacts are prepared
// unless the request is a pure builtin average-degree mine.
bool MinerSession::AverageDegreeOnly(const MiningRequest& request) {
  return request.measure == Measure::kAverageDegree &&
         request.ad_solver_name == "dcsad";
}

// True when the request's solve path can consume the shared pool: the knob
// is honored by the builtin "dcsga" solver's top-1 NewSEA path only (the
// top-k clique harvest is inherently sequential — see DcsgaOptions), while
// custom GA solvers get the pool and may use it however they like.
bool MinerSession::WantsIntraParallelism(const MiningRequest& request) {
  if (request.ga_solver.parallelism == 1) return false;
  if (request.measure == Measure::kAverageDegree) return false;
  // Mirror the builtin solver's sequential fallbacks (RunNewSea ignores the
  // knob under collect_cliques; the top-k harvest is sequential) so no pool
  // is spawned for a solve that cannot use it. Custom solvers may use the
  // pool however they like.
  if (request.ga_solver_name != "dcsga") return true;
  return request.top_k == 1 && !request.ga_solver.collect_cliques;
}

size_t MinerSession::ParallelismBudget() const {
  return options_.max_parallelism != 0 ? options_.max_parallelism
                                       : ThreadPool::DefaultConcurrency();
}

ThreadPool* MinerSession::EnsurePool(size_t concurrency) {
  const size_t target =
      std::max<size_t>(1, std::min(concurrency, ParallelismBudget()));
  // Replacing the pool is safe here: EnsurePool runs on the session thread
  // before any solve is dispatched, so no tasks are in flight. Not shrinking
  // keeps repeated mixed workloads from churning threads.
  if (pool_ == nullptr || pool_->concurrency() < target) {
    pool_ = std::make_unique<ThreadPool>(target - 1);
  }
  return pool_.get();
}

void MinerSession::FillCacheTelemetry(MiningTelemetry* telemetry) const {
  const PipelineCacheStats stats = cache_->stats();
  telemetry->pipeline_cache_hits = stats.hits;
  telemetry->pipeline_cache_misses = stats.misses;
  telemetry->pipeline_cache_bytes = stats.bytes;
}

Status MinerSession::Solve(const PreparedPipeline& pipeline,
                           const MiningRequest& request,
                           std::span<const VertexId> warm_support,
                           ThreadPool* pool, uint32_t parallelism_budget,
                           const CancelToken* cancel,
                           MiningResponse* response) const {
  SolverContext context;
  context.difference = &pipeline.difference;
  if (pipeline.has_ga_artifacts) {
    context.positive_part = &pipeline.positive_part;
    context.smart_bounds = &pipeline.smart_bounds;
    context.positive_part_validated = pipeline.validated_nonnegative;
  }
  context.pool = pool;
  context.parallelism_budget = parallelism_budget;
  context.warm_support = warm_support;
  context.cancel = cancel;

  // Measure dispatches are the coarsest cancellation points: a token fired
  // before a dispatch aborts the whole solve, one fired mid-dispatch is the
  // solver's to observe (the builtin "dcsga" polls per seed chunk).
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("mining request cancelled");
  }
  if (request.measure == Measure::kAverageDegree ||
      request.measure == Measure::kBoth) {
    const SolverFn solver =
        SolverRegistry::Global().Find(request.ad_solver_name);
    if (solver == nullptr) {
      return Status::NotFound("no solver registered under '" +
                              request.ad_solver_name + "'");
    }
    Result<std::vector<RankedSubgraph>> ranked =
        solver(context, request, &response->telemetry);
    if (!ranked.ok()) return ranked.status();
    response->average_degree = std::move(*ranked);
  }
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("mining request cancelled");
  }
  if (request.measure == Measure::kGraphAffinity ||
      request.measure == Measure::kBoth) {
    const SolverFn solver =
        SolverRegistry::Global().Find(request.ga_solver_name);
    if (solver == nullptr) {
      return Status::NotFound("no solver registered under '" +
                              request.ga_solver_name + "'");
    }
    Result<std::vector<RankedSubgraph>> ranked =
        solver(context, request, &response->telemetry);
    if (!ranked.ok()) return ranked.status();
    response->graph_affinity = std::move(*ranked);
  }
  return Status::OK();
}

Result<MiningResponse> MinerSession::Mine(const MiningRequest& request) {
  return Mine(request, /*cancel=*/nullptr);
}

Result<MiningResponse> MinerSession::Mine(const MiningRequest& request,
                                          const CancelToken* cancel) {
  DCS_RETURN_NOT_OK(request.Validate());

  MiningResponse response;
  WallTimer build_timer;
  bool reused = false;
  DCS_ASSIGN_OR_RETURN(
      PipelineCache::Snapshot pipeline,
      PreparePipeline(request, !AverageDegreeOnly(request), &reused));
  response.telemetry.build_seconds = build_timer.Seconds();
  response.telemetry.reused_cached_difference = reused;
  response.telemetry.session_rebuilds = num_rebuilds_;
  FillCacheTelemetry(&response.telemetry);

  WallTimer solve_timer;
  const std::span<const VertexId> warm =
      request.warm_start ? std::span<const VertexId>(warm_support_)
                         : std::span<const VertexId>();
  // A single request gets up to the session's whole thread budget; the pool
  // is only spawned when the solve path can actually use it (see
  // WantsIntraParallelism), and only as large as the request asks for
  // (auto = whole budget).
  ThreadPool* pool = nullptr;
  if (WantsIntraParallelism(request)) {
    pool = EnsurePool(request.ga_solver.parallelism == 0
                          ? ParallelismBudget()
                          : request.ga_solver.parallelism);
  }
  DCS_RETURN_NOT_OK(Solve(*pipeline, request, warm, pool,
                          static_cast<uint32_t>(ParallelismBudget()), cancel,
                          &response));
  response.telemetry.solve_seconds = solve_timer.Seconds();

  if (request.measure != Measure::kAverageDegree &&
      !response.graph_affinity.empty()) {
    warm_support_ = response.graph_affinity.front().vertices;
  }
  return response;
}

Result<std::vector<MiningResponse>> MinerSession::MineAll(
    std::span<const MiningRequest> requests) {
  std::vector<MiningResponse> responses(requests.size());
  if (requests.empty()) return responses;
  for (size_t i = 0; i < requests.size(); ++i) {
    const Status status = requests[i].Validate();
    if (!status.ok()) {
      return Status(status.code(), "request #" + std::to_string(i) + ": " +
                                       status.message());
    }
  }
  DCS_RETURN_NOT_OK(FlushUpdates());

  // Phase 1 (caller thread): prepare every pipeline, in request order so
  // cache hits, evictions and rebuild counters match sequential mining. The
  // snapshots pin the prepared artifacts, so concurrent eviction — by this
  // batch's own later preparations or by other sessions sharing the cache —
  // cannot invalidate a solve in phase 2.
  std::vector<PipelineCache::Snapshot> pipelines(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    WallTimer build_timer;
    bool reused = false;
    Result<PipelineCache::Snapshot> prepared =
        PreparePipeline(requests[i], !AverageDegreeOnly(requests[i]), &reused);
    if (!prepared.ok()) {
      return prepared.status();
    }
    pipelines[i] = std::move(*prepared);
    responses[i].telemetry.build_seconds = build_timer.Seconds();
    responses[i].telemetry.reused_cached_difference = reused;
    responses[i].telemetry.session_rebuilds = num_rebuilds_;
    FillCacheTelemetry(&responses[i].telemetry);
  }

  // Phase 2 (worker pool): solve. Solvers only read the prepared pipelines;
  // warm-start seeds are frozen at batch entry.
  //
  // The session's thread budget P is split between the two parallelism
  // levels: up to inter = min(P, #requests) requests run concurrently on the
  // shared pool, and request #i is granted an intra-request seed-shard
  // budget (taken up by requests whose ga_solver.parallelism is 0 = auto).
  // The per-request grants always satisfy two invariants: every request
  // gets at least one thread even when #requests > P (no zero-thread
  // shards — the budget degrades to sequential solves, never to starved
  // ones), and the floor(P / inter) division's remainder is spread over the
  // leading slots instead of being dropped (P = 8, 3 requests grants
  // {3, 3, 2}, not {2, 2, 2}). Mined subgraphs are parallelism-invariant,
  // so uneven grants cannot skew results — only wall time. Nested sharding
  // reuses the same pool — RunTasks callers participate in their own group,
  // so the nesting cannot deadlock.
  const size_t budget = ParallelismBudget();
  const size_t inter = std::max<size_t>(1, std::min(budget, requests.size()));
  const uint32_t intra_base =
      static_cast<uint32_t>(std::max<size_t>(1, budget / inter));
  const size_t intra_bonus_slots = budget > inter ? budget % inter : 0;
  auto intra_grant = [&](size_t i) -> uint32_t {
    return intra_base + (i < intra_bonus_slots ? 1 : 0);
  };
  bool any_intra = false;
  for (const MiningRequest& request : requests) {
    any_intra |= WantsIntraParallelism(request);
  }
  // Only a batch with intra-parallel requests can occupy the whole budget
  // (inter × intra); a purely sequential-solver batch needs inter slots.
  ThreadPool* pool = nullptr;
  if (any_intra || inter > 1) {
    pool = EnsurePool(any_intra ? budget : inter);
  }

  const std::vector<VertexId> warm_snapshot = warm_support_;
  std::vector<Status> statuses(requests.size(), Status::OK());
  auto solve_one = [&](size_t i) {
    WallTimer solve_timer;
    const std::span<const VertexId> warm =
        requests[i].warm_start ? std::span<const VertexId>(warm_snapshot)
                               : std::span<const VertexId>();
    // Demote solver exceptions (libdcs is exception-free, but registered
    // solvers need not be) to the Status contract instead of letting them
    // tear through the pool.
    try {
      statuses[i] = Solve(*pipelines[i], requests[i], warm, pool,
                          intra_grant(i), /*cancel=*/nullptr, &responses[i]);
    } catch (const std::exception& e) {
      statuses[i] = Status::Internal(std::string("solver threw: ") + e.what());
    } catch (...) {
      statuses[i] = Status::Internal("solver threw a non-std exception");
    }
    responses[i].telemetry.solve_seconds = solve_timer.Seconds();
  };
  if (pool != nullptr) {
    pool->RunTasks(requests.size(), solve_one);
  } else {
    for (size_t i = 0; i < requests.size(); ++i) solve_one(i);
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  // Leave the warm seed where sequential mining would have left it.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].measure != Measure::kAverageDegree &&
        !responses[i].graph_affinity.empty()) {
      warm_support_ = responses[i].graph_affinity.front().vertices;
    }
  }
  return responses;
}

Result<Graph> MinerSession::DifferenceSnapshot(double alpha, bool flip) {
  MiningRequest probe;
  probe.alpha = alpha;
  probe.flip = flip;
  return DifferenceSnapshot(probe);
}

Result<Graph> MinerSession::DifferenceSnapshot(const MiningRequest& request) {
  DCS_RETURN_NOT_OK(request.Validate());
  bool reused = false;
  DCS_ASSIGN_OR_RETURN(PipelineCache::Snapshot pipeline,
                       PreparePipeline(request, /*need_ga=*/false, &reused));
  return pipeline->difference;
}

}  // namespace dcs
