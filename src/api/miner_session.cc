#include "api/miner_session.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "api/solver_registry.h"
#include "core/kernels.h"
#include "core/newsea.h"
#include "store/artifact_store.h"
#include "graph/csr_patcher.h"
#include "graph/difference.h"
#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dcs {

namespace {

// The one canonical batch order: ascending PackVertexPair. Every consumer of
// a pair-keyed map (pending deltas, overlay materialization) folds through
// this so the determinism contract cannot drift between paths.
std::vector<std::pair<uint64_t, double>> SortedByPackedPair(
    const std::unordered_map<uint64_t, double>& by_pair) {
  std::vector<std::pair<uint64_t, double>> sorted(by_pair.begin(),
                                                  by_pair.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

}  // namespace

// Canonicalizes one side's pending map to ascending PackVertexPair order, so
// both flush paths fold the batch deterministically (satisfying the
// determinism contract regardless of hash-map iteration order).
std::vector<MinerSession::PendingDelta> MinerSession::SortedPending(
    const std::unordered_map<uint64_t, double>& pending) {
  std::vector<PendingDelta> out;
  out.reserve(pending.size());
  for (const auto& [key, delta] : SortedByPackedPair(pending)) {
    const VertexPair pair = UnpackVertexPair(key);
    out.push_back({pair.u, pair.v, delta});
  }
  return out;
}

namespace {

// Establishes the session invariant that every resident edge satisfies
// |w| > zero_eps. Graphs built elsewhere (default-eps builders, io) may
// carry smaller weights when the session uses a larger zero_eps; the first
// rebuild-path flush would silently drop those, so normalize once up front
// to keep the patch and rebuild paths bit-identical.
Graph NormalizedForZeroEps(Graph graph, double zero_eps) {
  bool needs_filter = false;
  for (VertexId u = 0; u < graph.NumVertices() && !needs_filter; ++u) {
    for (const Neighbor& nb : graph.NeighborsOf(u)) {
      if (std::fabs(nb.weight) <= zero_eps) {
        needs_filter = true;
        break;
      }
    }
  }
  if (!needs_filter) return graph;
  GraphBuilder builder(graph.NumVertices());
  for (const Edge& e : graph.UndirectedEdges()) {
    builder.AddEdgeUnchecked(e.u, e.v, e.weight);
  }
  Result<Graph> filtered = builder.Build(zero_eps);
  DCS_CHECK(filtered.ok()) << filtered.status().ToString();
  return std::move(filtered).value();
}

}  // namespace

MinerSession::MinerSession(VertexId num_vertices, Graph g1, Graph g2,
                           SessionOptions options)
    : num_vertices_(num_vertices),
      options_(options),
      g1_(NormalizedForZeroEps(std::move(g1), options.zero_eps)),
      g2_(NormalizedForZeroEps(std::move(g2), options.zero_eps)) {
  if (options_.pipeline_cache != nullptr) {
    cache_ = options_.pipeline_cache;
    private_cache_ = false;
  } else {
    PipelineCacheOptions cache_options;
    // 0 meant "evict everything but the fresh pipeline" before the cache
    // extraction, not PipelineCacheOptions' 0 = unbounded; keep that.
    cache_options.max_entries =
        std::max<size_t>(1, options_.max_cached_pipelines);
    cache_ = std::make_shared<PipelineCache>(cache_options);
    private_cache_ = true;
  }
  g1_accumulator_ = g1_.ContentAccumulator();
  g2_accumulator_ = g2_.ContentAccumulator();
  graph_fingerprint_ = CurrentFingerprint();
  if (options_.artifact_store != nullptr) {
    UseArtifactStore(options_.artifact_store);
  }
}

uint64_t MinerSession::CurrentFingerprint() const {
  return PipelineGraphFingerprintFromParts(
      Graph::FingerprintFromAccumulator(num_vertices_, g1_accumulator_),
      Graph::FingerprintFromAccumulator(num_vertices_, g2_accumulator_));
}

namespace {

// The numeric session knobs feed DCS_CHECK-free hot paths (the overlay fold,
// CsrPatcher's drop rule, the crossover compare), where a NaN or negative
// value would corrupt results silently instead of failing loudly the way
// GraphBuilder::Build rejects a bad zero_eps. Validate once at creation.
Status ValidateSessionOptions(const SessionOptions& options) {
  if (!std::isfinite(options.zero_eps) || options.zero_eps < 0.0) {
    return Status::InvalidArgument(
        "SessionOptions::zero_eps must be finite and >= 0");
  }
  if (std::isnan(options.patch_rebuild_ratio) ||
      options.patch_rebuild_ratio < 0.0) {
    return Status::InvalidArgument(
        "SessionOptions::patch_rebuild_ratio must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<MinerSession> MinerSession::Create(Graph g1, Graph g2,
                                          SessionOptions options) {
  DCS_RETURN_NOT_OK(ValidateSessionOptions(options));
  if (g1.NumVertices() != g2.NumVertices()) {
    return Status::InvalidArgument(
        "G1 and G2 must share one vertex set (got " +
        std::to_string(g1.NumVertices()) + " vs " +
        std::to_string(g2.NumVertices()) + " vertices)");
  }
  if (g1.NumVertices() == 0) {
    return Status::InvalidArgument("session needs at least one vertex");
  }
  // Read the count before the same call expression moves g1 (argument
  // evaluation order is unspecified).
  const VertexId num_vertices = g1.NumVertices();
  return MinerSession(num_vertices, std::move(g1), std::move(g2), options);
}

Result<MinerSession> MinerSession::CreateStreaming(VertexId num_vertices,
                                                   SessionOptions options) {
  DCS_RETURN_NOT_OK(ValidateSessionOptions(options));
  if (num_vertices == 0) {
    return Status::InvalidArgument("session needs at least one vertex");
  }
  return MinerSession(num_vertices, Graph(num_vertices), Graph(num_vertices),
                      options);
}

void MinerSession::UsePipelineCache(std::shared_ptr<PipelineCache> cache) {
  DCS_CHECK(cache != nullptr) << "UsePipelineCache needs a cache";
  cache_ = std::move(cache);
  private_cache_ = false;
}

void MinerSession::UseWorkerPool(std::shared_ptr<ThreadPool> pool) {
  DCS_CHECK(pool != nullptr) << "UseWorkerPool needs a pool";
  options_.worker_pool = std::move(pool);
  // Any private pool spawned before the attach is dropped; it has no tasks
  // in flight (the session is externally synchronized) and EnsurePool now
  // always returns the shared pool.
  pool_.reset();
}

void MinerSession::UseArtifactStore(std::shared_ptr<ArtifactStore> store) {
  DCS_CHECK(store != nullptr) << "UseArtifactStore needs a store";
  store_ = std::move(store);
  // Attaching (or re-attaching) resets the degradation ladder: the new store
  // gets a fresh chance at persistence. Its failure counters are
  // store-lifetime, so a store that is already failing re-degrades on the
  // next RefreshHealth instead of being grandfathered in as healthy.
  health_ = HealthState::kHealthy;
  // Warm boot: hydrate every valid stored pipeline of this graph pair into
  // the cache, so the first post-restart queries hit instead of rebuilding.
  // Corrupt records are skipped (and counted by the store); a skipped or
  // missing record just falls back to the lazy load / cold build below.
  store_hits_ +=
      store_->WarmBootFingerprint(graph_fingerprint_, cache_.get());
  // Persist the base pair when its CSR content is current (no pending
  // updates), so the file also identifies the dataset it caches
  // (dcs_store ls). Deduped by content fingerprint: reattaching — or a
  // second process over the same data — appends nothing.
  if (!graphs_dirty_ && overlay_g1_.empty() && overlay_g2_.empty()) {
    for (const Graph* graph : {&g1_, &g2_}) {
      if (!store_->ContainsGraph(graph->ContentFingerprint())) {
        // Best-effort: a full store disk loses the dataset record, not the
        // session (the write-back path absorbs I/O errors the same way).
        const Status ignored = store_->PutGraph(*graph);
        (void)ignored;
      }
    }
  }
}

Status MinerSession::ValidateUpdate(VertexId num_vertices, VertexId u,
                                    VertexId v, double delta) {
  if (u == v) {
    return Status::InvalidArgument("self-loop update on vertex " +
                                   std::to_string(u));
  }
  if (u >= num_vertices || v >= num_vertices) {
    return Status::OutOfRange("update endpoint out of range");
  }
  if (!std::isfinite(delta)) {
    return Status::InvalidArgument("non-finite update delta");
  }
  return Status::OK();
}

Status MinerSession::ApplyUpdate(UpdateSide side, VertexId u, VertexId v,
                                 double delta) {
  DCS_RETURN_NOT_OK(ValidateUpdate(num_vertices_, u, v, delta));
  auto& pending = side == UpdateSide::kG1 ? pending_g1_ : pending_g2_;
  pending[PackVertexPair(u, v)] += delta;
  ++num_updates_;
  graphs_dirty_ = true;
  return Status::OK();
}

Status MinerSession::FlushUpdates() {
  if (!graphs_dirty_) return Status::OK();
  const std::vector<PendingDelta> d1 = SortedPending(pending_g1_);
  const std::vector<PendingDelta> d2 = SortedPending(pending_g2_);
  const uint64_t stale_fingerprint = graph_fingerprint_;

  // Crossover: a batch of Δ distinct pairs small relative to the resident
  // edge mass takes the O(Δ) patch path; the rest — including the initial
  // bulk load, where m = 0 — takes the full rebuild. The paths are
  // bit-identical (the streaming equivalence tests pin this), so the choice
  // is purely a latency decision. The CSR edge counts ignore any pending
  // overlay (a bounded, within-crossover perturbation) — this is a
  // heuristic threshold, not a correctness input.
  const size_t delta_pairs = d1.size() + d2.size();
  const size_t edge_mass = g1_.NumEdges() + g2_.NumEdges();
  const bool patch =
      options_.patch_rebuild_ratio > 0.0 &&
      static_cast<double>(delta_pairs) <=
          options_.patch_rebuild_ratio * static_cast<double>(edge_mass);

  if (patch) {
    PatchGraphsAndPipelines(d1, d2, stale_fingerprint);
    ++num_update_patches_;
    // Amortized materialization: once the overlay itself outgrows the
    // crossover, fold it into the CSR arrays in one splice so per-pair
    // lookups stay O(log deg) with a small constant.
    if (static_cast<double>(overlay_g1_.size() + overlay_g2_.size()) >
        options_.patch_rebuild_ratio * static_cast<double>(edge_mass)) {
      MaterializeBaseGraphs();
    }
  } else {
    MaterializeBaseGraphs();
    auto rebuild = [&](const Graph& base,
                       const std::vector<PendingDelta>& deltas)
        -> Result<Graph> {
      GraphBuilder builder(num_vertices_);
      for (const Edge& e : base.UndirectedEdges()) {
        builder.AddEdgeUnchecked(e.u, e.v, e.weight);
      }
      for (const PendingDelta& d : deltas) {
        builder.AddEdgeUnchecked(d.u, d.v, d.delta);
      }
      return builder.Build(options_.zero_eps);
    };
    if (!d1.empty()) {
      DCS_ASSIGN_OR_RETURN(g1_, rebuild(g1_, d1));
      g1_accumulator_ = g1_.ContentAccumulator();
    }
    if (!d2.empty()) {
      DCS_ASSIGN_OR_RETURN(g2_, rebuild(g2_, d2));
      g2_accumulator_ = g2_.ContentAccumulator();
    }
    ++num_update_rebuilds_;
  }
  pending_g1_.clear();
  pending_g2_.clear();

  // Copy-on-write invalidation: the refreshed fingerprint redirects this
  // session to fresh cache keys — pre-populated by the patch path's
  // republish walk. A private cache holds no other session's entries, so
  // the stale ones are dropped eagerly (today's memory profile); in a
  // shared cache they may still serve sessions whose graphs kept the old
  // content, and age out via LRU otherwise. A net-zero batch leaves the
  // fingerprint unchanged — the resident entries are still this session's,
  // so nothing is erased.
  graph_fingerprint_ = CurrentFingerprint();
  if (private_cache_ && graph_fingerprint_ != stale_fingerprint) {
    cache_->EraseFingerprint(stale_fingerprint);
  }
  graphs_dirty_ = false;
  return Status::OK();
}

double MinerSession::OverlaidWeight(
    const Graph& base, const std::unordered_map<uint64_t, double>& overlay,
    VertexId u, VertexId v) const {
  if (!overlay.empty()) {
    const auto it = overlay.find(PackVertexPair(u, v));
    if (it != overlay.end()) {
      // Mirror the builder's drop rule: a (near-)cancelled weight is absent.
      return std::fabs(it->second) > options_.zero_eps ? it->second : 0.0;
    }
  }
  return base.EdgeWeight(u, v);
}

void MinerSession::MaterializeBaseGraphs() {
  auto splice = [&](Graph* graph, std::unordered_map<uint64_t, double>* overlay) {
    if (overlay->empty()) return;
    std::vector<EdgePatch> patches;
    patches.reserve(overlay->size());
    for (const auto& [key, weight] : SortedByPackedPair(*overlay)) {
      const VertexPair pair = UnpackVertexPair(key);
      patches.push_back(EdgePatch{pair.u, pair.v, weight});
    }
    // Accumulators were maintained when the overlay entries were recorded,
    // so the splice must not re-apply them.
    *graph = CsrPatcher::Apply(*graph, patches, options_.zero_eps,
                               /*accumulator=*/nullptr);
    overlay->clear();
  };
  splice(&g1_, &overlay_g1_);
  splice(&g2_, &overlay_g2_);
}

void MinerSession::PatchGraphsAndPipelines(const std::vector<PendingDelta>& d1,
                                           const std::vector<PendingDelta>& d2,
                                           uint64_t stale_fingerprint) {
  // Fold each side's deltas into absolute overlay assignments: old + delta
  // is the exact expression the rebuild's duplicate merge evaluates, so the
  // materialized weight is bit-identical to a rebuild's. The base CSR
  // arrays are untouched — their unchanged spans are shared as-is until
  // MaterializeBaseGraphs has a reason to splice.
  auto fold = [&](const Graph& base, const std::vector<PendingDelta>& deltas,
                  std::unordered_map<uint64_t, double>* overlay,
                  uint64_t* accumulator) {
    for (const PendingDelta& d : deltas) {
      const double old_weight = OverlaidWeight(base, *overlay, d.u, d.v);
      const double new_weight = old_weight + d.delta;
      if (old_weight != 0.0) {
        *accumulator -= Graph::UndirectedEdgeHash(d.u, d.v, old_weight);
      }
      if (std::fabs(new_weight) > options_.zero_eps) {
        *accumulator += Graph::UndirectedEdgeHash(d.u, d.v, new_weight);
      }
      (*overlay)[PackVertexPair(d.u, d.v)] = new_weight;
    }
  };
  fold(g1_, d1, &overlay_g1_, &g1_accumulator_);
  fold(g2_, d2, &overlay_g2_, &g2_accumulator_);

  // Union of pairs touched on either side, sorted — the only pairs whose
  // difference-graph image can have changed.
  std::vector<std::pair<VertexId, VertexId>> changed;
  changed.reserve(d1.size() + d2.size());
  for (const PendingDelta& d : d1) changed.emplace_back(d.u, d.v);
  for (const PendingDelta& d : d2) changed.emplace_back(d.u, d.v);
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  // Republish this fingerprint's cached pipelines, delta-patched, under the
  // refreshed fingerprint: post-update queries hit instead of cold-missing.
  // Copy-on-write — other sessions sharing the cache (and pinned snapshots)
  // keep the old, untouched entries. A net-zero batch (every pair's deltas
  // cancelled) leaves the fingerprint — and therefore every cached entry —
  // valid as-is: nothing to republish.
  const uint64_t fresh_fingerprint = CurrentFingerprint();
  if (fresh_fingerprint == stale_fingerprint) return;
  for (const auto& [key, snapshot] : cache_->SnapshotsFor(stale_fingerprint)) {
    PipelineCacheKey fresh_key = key;
    fresh_key.graph_fingerprint = fresh_fingerprint;
    auto patched = std::make_shared<const PreparedPipeline>(
        PatchPipeline(*snapshot, key, changed));
    cache_->Publish(fresh_key, patched);
    // Write the republished pipeline back so a restart after the update
    // warm-boots the *patched* content (asynchronously — the flush path
    // stays O(Δ) on this thread).
    if (store_ != nullptr) store_->PutPipelineAsync(fresh_key, patched);
    ++num_republished_;
  }
}

PreparedPipeline MinerSession::PatchPipeline(
    const PreparedPipeline& old_pipeline, const PipelineCacheKey& key,
    std::span<const std::pair<VertexId, VertexId>> changed_pairs) const {
  const Graph& first = key.flip ? g2_ : g1_;
  const Graph& second = key.flip ? g1_ : g2_;
  const auto& first_overlay = key.flip ? overlay_g2_ : overlay_g1_;
  const auto& second_overlay = key.flip ? overlay_g1_ : overlay_g2_;

  // Re-derive the pipeline image of every changed pair from the patched
  // content (CSR ⊕ overlay), mirroring BuildDifferenceGraph →
  // DiscretizeWeights → WeightsClampedAbove exactly (stored weights are
  // never zero, so weight == 0 means the pair is absent on that side). A
  // zero assignment drops the pair.
  std::vector<EdgePatch> difference_patches;
  difference_patches.reserve(changed_pairs.size());
  for (const auto& [u, v] : changed_pairs) {
    const double w1 = OverlaidWeight(first, first_overlay, u, v);
    const double w2 = OverlaidWeight(second, second_overlay, u, v);
    double d;
    if (w1 != 0.0 && w2 != 0.0) {
      d = w2 - key.alpha * w1;
    } else if (w1 != 0.0) {
      d = -key.alpha * w1;
    } else {
      d = w2;  // 0 when absent on both sides → dropped below
    }
    double weight = 0.0;
    if (d != 0.0 && std::fabs(d) > kDefaultZeroEps) {
      weight = d;
      if (key.discretize) {
        const double mapped = key.discretize->Map(d);
        weight = mapped != 0.0 && std::fabs(mapped) > kDefaultZeroEps
                     ? mapped
                     : 0.0;
      }
      if (weight != 0.0 && key.clamp_weights_above) {
        weight = std::min(weight, *key.clamp_weights_above);
      }
    }
    difference_patches.push_back(EdgePatch{u, v, weight});
  }

  PreparedPipeline out;
  out.difference = CsrPatcher::Apply(old_pipeline.difference,
                                     difference_patches, /*zero_eps=*/0.0);
  if (!old_pipeline.has_ga_artifacts) return out;

  // GD+ and the §V-D bounds follow the same delta: a changed pair's positive
  // image is its new difference weight when positive, absent otherwise.
  std::vector<EdgePatch> positive_patches;
  std::vector<PositivePairDelta> positive_changes;
  positive_patches.reserve(difference_patches.size());
  for (const EdgePatch& patch : difference_patches) {
    const double old_d = old_pipeline.difference.EdgeWeight(patch.u, patch.v);
    const double old_positive = old_d > 0.0 ? old_d : 0.0;
    const double new_positive = patch.weight > 0.0 ? patch.weight : 0.0;
    positive_patches.push_back(EdgePatch{patch.u, patch.v, new_positive});
    if (old_positive != new_positive) {
      positive_changes.push_back(
          PositivePairDelta{patch.u, patch.v, old_positive, new_positive});
    }
  }
  out.positive_part = CsrPatcher::Apply(old_pipeline.positive_part,
                                        positive_patches, /*zero_eps=*/0.0);
  out.smart_bounds = old_pipeline.smart_bounds;
  ApplySmartInitBoundsDelta(old_pipeline.positive_part, out.positive_part,
                            positive_changes, &out.smart_bounds);
  out.has_ga_artifacts = true;
  // GD+ holds only strictly positive assignments by construction, so the
  // non-negativity mark carries over without an O(m) rescan.
  out.validated_nonnegative = old_pipeline.validated_nonnegative;
  return out;
}

Result<PipelineCache::Snapshot> MinerSession::PreparePipeline(
    const MiningRequest& request, bool need_ga, bool* reused) {
  DCS_RETURN_NOT_OK(FlushUpdates());
  PipelineCacheKey key;
  key.graph_fingerprint = graph_fingerprint_;
  key.alpha = request.alpha;
  key.flip = request.flip;
  key.discretize = request.discretize;
  key.clamp_weights_above = request.clamp_weights_above;

  // Runs on this thread inside GetOrPrepare (without the cache lock), at
  // most once per key across every session attached to the cache.
  bool built_difference = false;
  bool store_hit = false;
  bool store_miss = false;
  bool write_back = false;
  auto build =
      [&](const PreparedPipeline* reuse) -> Result<PreparedPipeline> {
    PreparedPipeline out;
    bool have_difference = false;
    if (reuse != nullptr) {
      // GA upgrade of a difference-only entry: reuse the cached graph.
      out.difference = reuse->difference;
      have_difference = true;
    } else if (store_ != nullptr) {
      // Lazy store load for a key the warm boot did not hydrate (evicted
      // since, or stored by another process after this session attached).
      // LoadPipeline verifies checksum and exact key; anything corrupt or
      // stale reads as absent and the cold build below rebuilds over it.
      Result<PreparedPipeline> stored = store_->LoadPipeline(key);
      if (stored.ok()) {
        store_hit = true;
        if (!need_ga || stored->has_ga_artifacts) {
          return std::move(stored).value();
        }
        // The stored record is difference-only; derive the GA artifacts
        // below and write the upgraded pipeline back.
        out.difference = std::move(stored->difference);
        have_difference = true;
      } else {
        store_miss = true;
      }
    }
    if (!have_difference) {
      // A cold build consumes the base graphs as real CSR arrays; fold any
      // deferred overlay in first (no-op when none is pending).
      MaterializeBaseGraphs();
      const Graph& first = request.flip ? g2_ : g1_;
      const Graph& second = request.flip ? g1_ : g2_;
      // Kernel-layer twins of the reference builders (core/kernels.h):
      // direct-CSR merge and vectorized discretize/clamp, bit-identical to
      // BuildDifferenceGraph / DiscretizeWeights / WeightsClampedAbove —
      // which is what keeps the PatchPipeline mirror and the artifact-store
      // fingerprints valid unchanged.
      DCS_ASSIGN_OR_RETURN(
          out.difference,
          GraphKernels::BuildDifferenceGraph(first, second, request.alpha));
      if (request.discretize) {
        DCS_ASSIGN_OR_RETURN(
            out.difference,
            GraphKernels::DiscretizeWeights(out.difference,
                                            *request.discretize));
      }
      if (request.clamp_weights_above) {
        out.difference = GraphKernels::WeightsClampedAbove(
            out.difference, *request.clamp_weights_above);
      }
      built_difference = true;
    }
    if (need_ga) {
      out.positive_part = GraphKernels::PositivePart(out.difference);
      out.smart_bounds = ComputeSmartInitBounds(out.positive_part);
      // Validate once per prepared pipeline; every solve against it then
      // skips the per-call O(m) scan. PositivePart output cannot fail the
      // scan, so a failure here is a library bug, not bad input.
      DCS_CHECK(ValidateNonNegativeWeights(out.positive_part).ok());
      out.validated_nonnegative = true;
      out.has_ga_artifacts = true;
    }
    // Anything not loaded verbatim from the store — a cold build, a GA
    // upgrade of a cached or stored difference — is worth writing back.
    write_back = true;
    return out;
  };
  DCS_ASSIGN_OR_RETURN(PipelineCache::Snapshot snapshot,
                       cache_->GetOrPrepare(key, need_ga, build, reused));
  if (built_difference) ++num_rebuilds_;
  if (store_hit) ++store_hits_;
  if (store_miss) ++store_misses_;
  if (write_back && store_ != nullptr) {
    // Asynchronous: the background writer appends after this query returns;
    // the hot path never blocks on disk.
    store_->PutPipelineAsync(key, snapshot);
  }
  return snapshot;
}

// True when the request needs only the builtin average-degree solve. Custom
// solvers may want GD+ regardless of measure, so artifacts are prepared
// unless the request is a pure builtin average-degree mine.
bool MinerSession::AverageDegreeOnly(const MiningRequest& request) {
  return request.measure == Measure::kAverageDegree &&
         request.ad_solver_name == "dcsad";
}

// True when the request's solve path can consume the shared pool: the knob
// is honored by the builtin "dcsga" solver's top-1 NewSEA path only (the
// top-k clique harvest is inherently sequential — see DcsgaOptions), while
// custom GA solvers get the pool and may use it however they like.
bool MinerSession::WantsIntraParallelism(const MiningRequest& request) {
  if (request.ga_solver.parallelism == 1) return false;
  if (request.measure == Measure::kAverageDegree) return false;
  // Mirror the builtin solver's sequential fallbacks (RunNewSea ignores the
  // knob under collect_cliques; the top-k harvest is sequential) so no pool
  // is spawned for a solve that cannot use it. Custom solvers may use the
  // pool however they like.
  if (request.ga_solver_name != "dcsga") return true;
  return request.top_k == 1 && !request.ga_solver.collect_cliques;
}

size_t MinerSession::ParallelismBudget() const {
  return options_.max_parallelism != 0 ? options_.max_parallelism
                                       : ThreadPool::DefaultConcurrency();
}

ThreadPool* MinerSession::EnsurePool(size_t concurrency) {
  // A shared pool (SessionOptions::worker_pool / UseWorkerPool) is used
  // as-is: its size is a service-level decision, and growing it here would
  // race with the other sessions running on it. ParallelismBudget still
  // bounds the shard fan-out of this session's solves.
  if (options_.worker_pool != nullptr) return options_.worker_pool.get();
  const size_t target =
      std::max<size_t>(1, std::min(concurrency, ParallelismBudget()));
  // Replacing the pool is safe here: EnsurePool runs on the session thread
  // before any solve is dispatched, so no tasks are in flight. Not shrinking
  // keeps repeated mixed workloads from churning threads.
  if (pool_ == nullptr || pool_->concurrency() < target) {
    pool_ = std::make_unique<ThreadPool>(target - 1);
  }
  return pool_.get();
}

void MinerSession::FillCacheTelemetry(MiningTelemetry* telemetry) const {
  const PipelineCacheStats stats = cache_->stats();
  telemetry->pipeline_cache_hits = stats.hits;
  telemetry->pipeline_cache_misses = stats.misses;
  telemetry->pipeline_cache_bytes = stats.bytes;
  telemetry->update_patches = num_update_patches_;
  telemetry->update_rebuilds = num_update_rebuilds_;
  telemetry->patched_entries_republished = num_republished_;
  telemetry->store_hits = store_hits_;
  telemetry->store_misses = store_misses_;
  telemetry->store_corrupt_pages =
      store_ != nullptr ? store_->stats().corrupt_pages : 0;
  telemetry->store_write_errors = store_write_errors_;
  telemetry->store_retries = store_retries_;
  telemetry->health_state = health_;
  telemetry->health_transitions = health_transitions_;
  const KernelCounters kernels = KernelCountersSnapshot();
  telemetry->kernel_simd_calls = kernels.avx2_calls;
  telemetry->kernel_scalar_calls = kernels.scalar_calls;
  telemetry->kernel_simd_active = ActiveKernelIsa() == KernelIsa::kAvx2;
}

HealthState MinerSession::RefreshHealth() {
  // Snapshot the attached store's failure counters into session members so
  // the telemetry keeps reporting them after a store-offline detach.
  if (store_ != nullptr) {
    const ArtifactStoreStats stats = store_->stats();
    store_write_errors_ = stats.write_errors;
    store_retries_ = stats.io_retries;
  }
  HealthState next = health_;
  if (health_ != HealthState::kStoreOffline && store_ != nullptr) {
    if (options_.store_failure_threshold != 0 &&
        store_write_errors_ >= options_.store_failure_threshold) {
      next = HealthState::kStoreOffline;
    } else if (store_write_errors_ > 0) {
      next = HealthState::kDegraded;
    }
  }
  if (next != health_) {
    health_ = next;
    ++health_transitions_;
    if (health_ == HealthState::kStoreOffline) {
      // Detach: drop our reference (other owners are unaffected). Mining
      // continues memory-only and bit-identically; only persistence stops.
      store_ = nullptr;
    }
  }
  return health_;
}

Status MinerSession::Solve(const PreparedPipeline& pipeline,
                           const MiningRequest& request,
                           std::span<const VertexId> warm_support,
                           ThreadPool* pool, uint32_t parallelism_budget,
                           const CancelToken* cancel,
                           MiningResponse* response) const {
  // SessionOptions::fast_math is a session-wide default: requests that did
  // not opt in themselves get the reassociating reduction kernels switched
  // on via a copy, so the caller's request object stays untouched.
  MiningRequest fast_math_request;
  const MiningRequest* effective = &request;
  if (options_.fast_math && !request.ga_solver.fast_math) {
    fast_math_request = request;
    fast_math_request.ga_solver.fast_math = true;
    effective = &fast_math_request;
  }
  SolverContext context;
  context.difference = &pipeline.difference;
  if (pipeline.has_ga_artifacts) {
    context.positive_part = &pipeline.positive_part;
    context.smart_bounds = &pipeline.smart_bounds;
    context.positive_part_validated = pipeline.validated_nonnegative;
  }
  context.pool = pool;
  context.parallelism_budget = parallelism_budget;
  context.warm_support = warm_support;
  context.cancel = cancel;

  // Measure dispatches are the coarsest cancellation points: a token fired
  // before a dispatch aborts the whole solve, one fired mid-dispatch is the
  // solver's to observe (the builtin "dcsga" polls per seed chunk).
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("mining request cancelled");
  }
  if (request.measure == Measure::kAverageDegree ||
      request.measure == Measure::kBoth) {
    const SolverFn solver =
        SolverRegistry::Global().Find(request.ad_solver_name);
    if (solver == nullptr) {
      return Status::NotFound("no solver registered under '" +
                              request.ad_solver_name + "'");
    }
    Result<std::vector<RankedSubgraph>> ranked =
        solver(context, *effective, &response->telemetry);
    if (!ranked.ok()) return ranked.status();
    response->average_degree = std::move(*ranked);
  }
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("mining request cancelled");
  }
  if (request.measure == Measure::kGraphAffinity ||
      request.measure == Measure::kBoth) {
    const SolverFn solver =
        SolverRegistry::Global().Find(request.ga_solver_name);
    if (solver == nullptr) {
      return Status::NotFound("no solver registered under '" +
                              request.ga_solver_name + "'");
    }
    Result<std::vector<RankedSubgraph>> ranked =
        solver(context, *effective, &response->telemetry);
    if (!ranked.ok()) return ranked.status();
    response->graph_affinity = std::move(*ranked);
  }
  return Status::OK();
}

Result<MiningResponse> MinerSession::Mine(const MiningRequest& request) {
  return Mine(request, /*cancel=*/nullptr);
}

Result<MiningResponse> MinerSession::Mine(const MiningRequest& request,
                                          const CancelToken* cancel) {
  DCS_RETURN_NOT_OK(request.Validate());
  // Advance the degradation ladder before touching the store: write-back
  // failures from earlier requests are observed here, and a store that just
  // crossed the threshold is detached before this request would use it.
  RefreshHealth();

  MiningResponse response;
  WallTimer build_timer;
  bool reused = false;
  DCS_ASSIGN_OR_RETURN(
      PipelineCache::Snapshot pipeline,
      PreparePipeline(request, !AverageDegreeOnly(request), &reused));
  response.telemetry.build_seconds = build_timer.Seconds();
  response.telemetry.reused_cached_difference = reused;
  response.telemetry.session_rebuilds = num_rebuilds_;
  FillCacheTelemetry(&response.telemetry);

  WallTimer solve_timer;
  const std::span<const VertexId> warm =
      request.warm_start ? std::span<const VertexId>(warm_support_)
                         : std::span<const VertexId>();
  // A single request gets up to the session's whole thread budget; the pool
  // is only spawned when the solve path can actually use it (see
  // WantsIntraParallelism), and only as large as the request asks for
  // (auto = whole budget).
  ThreadPool* pool = nullptr;
  if (WantsIntraParallelism(request)) {
    pool = EnsurePool(request.ga_solver.parallelism == 0
                          ? ParallelismBudget()
                          : request.ga_solver.parallelism);
  }
  DCS_RETURN_NOT_OK(Solve(*pipeline, request, warm, pool,
                          static_cast<uint32_t>(ParallelismBudget()), cancel,
                          &response));
  response.telemetry.solve_seconds = solve_timer.Seconds();

  if (request.measure != Measure::kAverageDegree &&
      !response.graph_affinity.empty()) {
    warm_support_ = response.graph_affinity.front().vertices;
  }
  return response;
}

Result<std::vector<MiningResponse>> MinerSession::MineAll(
    std::span<const MiningRequest> requests) {
  std::vector<MiningResponse> responses(requests.size());
  if (requests.empty()) return responses;
  for (size_t i = 0; i < requests.size(); ++i) {
    const Status status = requests[i].Validate();
    if (!status.ok()) {
      return Status(status.code(), "request #" + std::to_string(i) + ": " +
                                       status.message());
    }
  }
  DCS_RETURN_NOT_OK(FlushUpdates());
  RefreshHealth();  // same entry-point ladder step as Mine

  // Phase 1 (caller thread): prepare every pipeline, in request order so
  // cache hits, evictions and rebuild counters match sequential mining. The
  // snapshots pin the prepared artifacts, so concurrent eviction — by this
  // batch's own later preparations or by other sessions sharing the cache —
  // cannot invalidate a solve in phase 2.
  std::vector<PipelineCache::Snapshot> pipelines(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    WallTimer build_timer;
    bool reused = false;
    Result<PipelineCache::Snapshot> prepared =
        PreparePipeline(requests[i], !AverageDegreeOnly(requests[i]), &reused);
    if (!prepared.ok()) {
      return prepared.status();
    }
    pipelines[i] = std::move(*prepared);
    responses[i].telemetry.build_seconds = build_timer.Seconds();
    responses[i].telemetry.reused_cached_difference = reused;
    responses[i].telemetry.session_rebuilds = num_rebuilds_;
    FillCacheTelemetry(&responses[i].telemetry);
  }

  // Phase 2 (worker pool): solve. Solvers only read the prepared pipelines;
  // warm-start seeds are frozen at batch entry.
  //
  // The session's thread budget P is split between the two parallelism
  // levels: up to inter = min(P, #requests) requests run concurrently on the
  // shared pool, and request #i is granted an intra-request seed-shard
  // budget (taken up by requests whose ga_solver.parallelism is 0 = auto).
  // The per-request grants always satisfy two invariants: every request
  // gets at least one thread even when #requests > P (no zero-thread
  // shards — the budget degrades to sequential solves, never to starved
  // ones), and the floor(P / inter) division's remainder is spread over the
  // leading slots instead of being dropped (P = 8, 3 requests grants
  // {3, 3, 2}, not {2, 2, 2}). Mined subgraphs are parallelism-invariant,
  // so uneven grants cannot skew results — only wall time. Nested sharding
  // reuses the same pool — RunTasks callers participate in their own group,
  // so the nesting cannot deadlock.
  const size_t budget = ParallelismBudget();
  const size_t inter = std::max<size_t>(1, std::min(budget, requests.size()));
  const uint32_t intra_base =
      static_cast<uint32_t>(std::max<size_t>(1, budget / inter));
  const size_t intra_bonus_slots = budget > inter ? budget % inter : 0;
  auto intra_grant = [&](size_t i) -> uint32_t {
    return intra_base + (i < intra_bonus_slots ? 1 : 0);
  };
  bool any_intra = false;
  for (const MiningRequest& request : requests) {
    any_intra |= WantsIntraParallelism(request);
  }
  // Only a batch with intra-parallel requests can occupy the whole budget
  // (inter × intra); a purely sequential-solver batch needs inter slots.
  ThreadPool* pool = nullptr;
  if (any_intra || inter > 1) {
    pool = EnsurePool(any_intra ? budget : inter);
  }

  const std::vector<VertexId> warm_snapshot = warm_support_;
  std::vector<Status> statuses(requests.size(), Status::OK());
  auto solve_one = [&](size_t i) {
    WallTimer solve_timer;
    const std::span<const VertexId> warm =
        requests[i].warm_start ? std::span<const VertexId>(warm_snapshot)
                               : std::span<const VertexId>();
    // Demote solver exceptions (libdcs is exception-free, but registered
    // solvers need not be) to the Status contract instead of letting them
    // tear through the pool.
    try {
      statuses[i] = Solve(*pipelines[i], requests[i], warm, pool,
                          intra_grant(i), /*cancel=*/nullptr, &responses[i]);
    } catch (const std::exception& e) {
      statuses[i] = Status::Internal(std::string("solver threw: ") + e.what());
    } catch (...) {
      statuses[i] = Status::Internal("solver threw a non-std exception");
    }
    responses[i].telemetry.solve_seconds = solve_timer.Seconds();
  };
  if (pool != nullptr) {
    pool->RunTasks(requests.size(), solve_one);
  } else {
    for (size_t i = 0; i < requests.size(); ++i) solve_one(i);
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  // Leave the warm seed where sequential mining would have left it.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].measure != Measure::kAverageDegree &&
        !responses[i].graph_affinity.empty()) {
      warm_support_ = responses[i].graph_affinity.front().vertices;
    }
  }
  return responses;
}

Result<Graph> MinerSession::DifferenceSnapshot(double alpha, bool flip) {
  MiningRequest probe;
  probe.alpha = alpha;
  probe.flip = flip;
  return DifferenceSnapshot(probe);
}

Result<Graph> MinerSession::DifferenceSnapshot(const MiningRequest& request) {
  DCS_RETURN_NOT_OK(request.Validate());
  bool reused = false;
  DCS_ASSIGN_OR_RETURN(PipelineCache::Snapshot pipeline,
                       PreparePipeline(request, /*need_ga=*/false, &reused));
  return pipeline->difference;
}

}  // namespace dcs
