// Streaming DCS maintenance — the deployment mode §I motivates (real-time
// story identification à la Angel et al. [1], and "detecting current
// anomalies against historical data").
//
// StreamingDcsMonitor is a thin adapter over a streaming MinerSession for
// callers that want the core result structs (DcsadResult/DcsgaResult) and an
// alpha fixed at construction: updates are O(1), the difference snapshot is
// rebuilt lazily, and DCSGA queries warm-start from the previous answer.
// All of the machinery — pending-update folding, dirty-snapshot
// invalidation, pipeline caching, warm-start seeds — lives in MinerSession;
// new code should use MinerSession directly.

#ifndef DCS_API_STREAMING_MONITOR_H_
#define DCS_API_STREAMING_MONITOR_H_

#include <cstdint>

#include "api/miner_session.h"
#include "api/mining.h"
#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// Which input graph an update applies to (alias of the facade enum:
/// kG1 = baseline, kG2 = current).
using StreamSide = UpdateSide;

/// \brief Incrementally maintained difference graph with on-demand mining.
class StreamingDcsMonitor {
 public:
  /// \param num_vertices fixed vertex universe; must be >= 1 (checked, like
  ///        alpha, with an aborting DCS_CHECK — ctor arguments are caller
  ///        bugs, not runtime conditions).
  /// \param alpha §III-D scale of G1 (default 1: standard difference).
  explicit StreamingDcsMonitor(VertexId num_vertices, double alpha = 1.0);

  VertexId num_vertices() const { return session_.num_vertices(); }

  /// Adds `delta` to the weight of undirected edge {u,v} on the given side.
  /// Fails on self-loops, out-of-range endpoints, or non-finite deltas.
  Status ApplyUpdate(StreamSide side, VertexId u, VertexId v, double delta);

  /// Current difference graph (rebuilds the snapshot if updates arrived
  /// since the last call). O(m log m) on rebuild, O(1) otherwise.
  Result<Graph> DifferenceSnapshot();

  /// Mines the average-degree DCS on the current difference graph.
  Result<DcsadResult> MineDcsad();

  /// Mines the affinity DCS on the current difference graph's positive
  /// part; warm-starts from the previous query's support before falling
  /// back to the smart-initialization order.
  Result<DcsgaResult> MineDcsga(const DcsgaOptions& options = {});

  /// Counters for tests/telemetry.
  uint64_t num_updates() const { return session_.num_updates(); }
  uint64_t num_rebuilds() const { return session_.num_rebuilds(); }

 private:
  MinerSession session_;
  double alpha_;
};

}  // namespace dcs

#endif  // DCS_API_STREAMING_MONITOR_H_
