// PipelineCache — shared, cross-session storage of prepared difference-graph
// pipelines, the scale-out layer for heavy multi-user traffic over the same
// datasets.
//
// The expensive prefix of every DCS solve is pipeline preparation: building
// the difference graph D = A2 − α·A1 (with discretize/clamp), extracting
// GD+, and computing the §V-D smart-initialization bounds (whose τ_u is the
// k-core reduction of GD+). A single MinerSession already amortizes this
// prefix across its own queries; PipelineCache extends the amortization
// across *sessions*: N sessions (or MiningService instances) serving the
// same dataset hand one PipelineCache to their SessionOptions and the prefix
// is paid once per distinct (graph pair, pipeline) content instead of once
// per session.
//
// Keying is by *content*, not identity: PipelineCacheKey combines a stable
// fingerprint of the (G1, G2) pair (Graph::ContentFingerprint) with the
// MiningRequest's pipeline fields (alpha, flip, discretize, clamp). Two
// sessions holding separate but equal copies of a dataset therefore share
// entries; equal fingerprints are treated as content equality (a 2^-64
// collision is accepted).
//
// Ownership & invalidation. Entries hold immutable PreparedPipeline
// artifacts behind shared_ptr snapshots. A solve pins the snapshot it was
// served, so eviction — or another session's concurrent activity — can
// never invalidate an in-flight solve. Invalidation is copy-on-write: a
// streaming ApplyUpdate changes the updating session's graph fingerprint,
// which redirects that session to fresh keys while every other session (and
// every pinned snapshot) keeps reading the old, still-immutable entries
// until LRU/byte-budget eviction reclaims them.
//
// Thread safety. All methods are safe to call from any thread. GetOrPrepare
// runs its build callback *outside* the cache lock and gates concurrent
// builders per key: when N sessions race on a cold key, exactly one runs the
// build and the rest block until the snapshot is published (so a shared
// dataset really is prepared once — the acceptance criterion the tests pin).
//
// Determinism. PreparedPipeline artifacts are pure functions of the key's
// content, so a solve served from a shared snapshot is bit-identical to one
// over a privately prepared pipeline. Only the hit/miss/bytes telemetry
// depends on which sessions got there first.

#ifndef DCS_API_PIPELINE_CACHE_H_
#define DCS_API_PIPELINE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/newsea.h"       // SmartInitBounds
#include "graph/difference.h"  // DiscretizeSpec
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

/// \brief Content key of one prepared pipeline: the graph-pair fingerprint
/// plus the MiningRequest fields that determine the materialized difference
/// graph. Equal keys share one cache entry across sessions.
struct PipelineCacheKey {
  /// PipelineGraphFingerprint of the session's (G1, G2) pair.
  uint64_t graph_fingerprint = 0;
  double alpha = 1.0;
  bool flip = false;
  std::optional<DiscretizeSpec> discretize;
  std::optional<double> clamp_weights_above;

  /// Stable 64-bit hash over all fields (bucket hash; full equality still
  /// decides entry identity).
  uint64_t Hash() const;

  /// Equality uses *bit patterns* on the floating-point fields so it always
  /// agrees with Hash: a NaN field still matches itself (a key can never
  /// become unfindable), and -0.0 and 0.0 are distinct keys.
  friend bool operator==(const PipelineCacheKey&, const PipelineCacheKey&);
};

/// \brief Order-sensitive fingerprint of a (G1, G2) session graph pair for
/// PipelineCacheKey::graph_fingerprint; flipping the pair changes the value.
uint64_t PipelineGraphFingerprint(const Graph& g1, const Graph& g2);

/// \brief The same pair fingerprint from precomputed per-graph
/// ContentFingerprint values — the O(1) tail of the streaming patch path,
/// whose per-graph halves are maintained incrementally via
/// Graph::FingerprintFromAccumulator.
uint64_t PipelineGraphFingerprintFromParts(uint64_t g1_fingerprint,
                                           uint64_t g2_fingerprint);

/// \brief The immutable artifacts of one materialized pipeline: the
/// difference graph after discretize/clamp, and — once a graph-affinity
/// solve needed them — GD+, its smart-init bounds, and the non-negativity
/// validation mark.
///
/// Instances published by PipelineCache are const behind
/// PipelineCache::Snapshot and never mutated; a pipeline lacking GA
/// artifacts is *upgraded* by publishing a replacement entry (the cheap
/// copy-on-write path that reuses the cached difference graph).
struct PreparedPipeline {
  Graph difference{0};
  bool has_ga_artifacts = false;
  Graph positive_part{0};
  SmartInitBounds smart_bounds;
  /// GD+ passed the non-negativity scan once; solves against this pipeline
  /// skip their own O(m) scan.
  bool validated_nonnegative = false;

  /// Approximate heap footprint, the unit of the cache byte budget.
  size_t ApproxBytes() const;
};

/// Capacity knobs. Both limits are applied after each insertion, evicting
/// least-recently-used entries first; a zero value disables that limit.
struct PipelineCacheOptions {
  /// Max distinct prepared pipelines kept resident. 0 = unbounded.
  size_t max_entries = 64;
  /// Byte budget over PreparedPipeline::ApproxBytes. 0 = unbounded. A budget
  /// smaller than a single entry degrades gracefully: the entry is built,
  /// returned to the caller (whose snapshot stays valid) and immediately
  /// evicted.
  size_t max_bytes = 0;
};

/// Point-in-time counters; cache-lifetime, shared across every session
/// attached to the cache.
struct PipelineCacheStats {
  /// GetOrPrepare calls fully served from a resident entry.
  uint64_t hits = 0;
  /// GetOrPrepare calls that built the difference graph.
  uint64_t misses = 0;
  /// Calls that reused a cached difference graph but added the GA artifacts
  /// (counted separately from hits/misses).
  uint64_t upgrades = 0;
  /// Entries published directly via Publish — the streaming patch path
  /// re-homing a session's pipelines under its new graph fingerprint instead
  /// of letting every key cold-miss after an update.
  uint64_t republishes = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  /// Resident bytes (sum of entry ApproxBytes).
  size_t bytes = 0;
};

/// \brief Thread-safe, content-keyed LRU cache of PreparedPipeline
/// snapshots. See the file comment for the sharing, invalidation and
/// determinism contract.
///
/// Typical wiring: create one with make_shared, hand it to N sessions via
/// SessionOptions::pipeline_cache (or MiningServiceOptions::shared_cache).
/// A MinerSession without a shared cache creates a private instance, which
/// preserves the pre-cache-extraction single-session behavior exactly.
class PipelineCache {
 public:
  /// A pinned, immutable view of one prepared pipeline. Holding it keeps
  /// the artifacts alive across eviction; release promptly after the solve.
  using Snapshot = std::shared_ptr<const PreparedPipeline>;

  /// Builds the artifacts for a key, called without the cache lock held.
  /// `reuse` is the resident pipeline to upgrade (copy its difference graph
  /// and add GA artifacts), or nullptr to build from the session's graphs.
  using BuildFn =
      std::function<Result<PreparedPipeline>(const PreparedPipeline* reuse)>;

  explicit PipelineCache(PipelineCacheOptions options = {});

  PipelineCache(const PipelineCache&) = delete;
  PipelineCache& operator=(const PipelineCache&) = delete;

  /// \brief Returns the snapshot for `key`, running `build` at most once
  /// across all concurrent callers of the key.
  ///
  /// A resident entry that satisfies `need_ga` is a hit. Otherwise the
  /// caller either becomes the key's single builder (running `build` outside
  /// the lock, then publishing) or blocks until the racing builder
  /// publishes. `*reused_difference` reports whether the difference graph
  /// came from the cache (full hit or GA upgrade) — the value sessions
  /// surface as MiningTelemetry::reused_cached_difference. On build failure
  /// the status propagates to the caller, the cache is left unchanged, and
  /// racing waiters of the key retry the build themselves.
  Result<Snapshot> GetOrPrepare(const PipelineCacheKey& key, bool need_ga,
                                const BuildFn& build, bool* reused_difference);

  /// \brief Publishes a ready-made snapshot under `key`, replacing any
  /// resident entry and counting toward the LRU/byte limits.
  ///
  /// This is the streaming delta-maintenance hook: after an ApplyUpdate
  /// batch is patched in O(Δ), MinerSession republishes each of its old
  /// fingerprint's entries — patched the same way — under the new
  /// fingerprint, so the post-update queries hit instead of rebuilding.
  /// Copy-on-write throughout: the old entries (and any pinned snapshots)
  /// are untouched.
  void Publish(const PipelineCacheKey& key, Snapshot snapshot);

  /// Resident entries of one graph-pair fingerprint, for the republish walk
  /// above. Snapshots are pinned by the returned vector, so concurrent
  /// eviction cannot invalidate them.
  std::vector<std::pair<PipelineCacheKey, Snapshot>> SnapshotsFor(
      uint64_t graph_fingerprint) const;

  /// Drops every resident entry of one graph-pair fingerprint (pinned
  /// snapshots stay valid). Sessions re-materialize on demand.
  void EraseFingerprint(uint64_t graph_fingerprint);

  /// Drops every resident entry.
  void Clear();

  /// Resident entries for one graph-pair fingerprint (a session's view of
  /// "its" cached pipelines).
  size_t EntriesFor(uint64_t graph_fingerprint) const;

  /// Lifetime counters and current occupancy.
  PipelineCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const PipelineCacheKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };

  struct Entry {
    Snapshot prepared;
    size_t bytes = 0;
    /// Position in lru_ (front = most recently used).
    std::list<PipelineCacheKey>::iterator lru_it;
  };

  // Replaces/creates the entry for `key` and applies the LRU/byte limits.
  // Mutex held.
  void InsertLocked(const PipelineCacheKey& key, Snapshot snapshot);
  // Drops `it`'s entry. Mutex held.
  void EvictLocked(std::unordered_map<PipelineCacheKey, Entry,
                                      KeyHash>::iterator it,
                   bool count_eviction);

  const PipelineCacheOptions options_;

  mutable std::mutex mutex_;
  // Wakes waiters when a key leaves building_ (its build published/failed).
  std::condition_variable build_done_;
  std::unordered_map<PipelineCacheKey, Entry, KeyHash> entries_;
  // Keys with a build in flight; at most one builder per key.
  std::unordered_set<PipelineCacheKey, KeyHash> building_;
  // LRU order of resident keys, most recent first.
  std::list<PipelineCacheKey> lru_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t upgrades_ = 0;
  uint64_t republishes_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace dcs

#endif  // DCS_API_PIPELINE_CACHE_H_
