// Solver registry of the mining facade.
//
// MinerSession dispatches each measure of a MiningRequest to a solver
// function looked up by name ("dcsad" → DCSGreedy / iterated peeling,
// "dcsga" → NewSEA / all-inits harvest). New measures or experimental
// solver variants plug in by registering a function — callers keep using
// MinerSession::Mine unchanged and select the variant through
// MiningRequest::{ad,ga}_solver_name.
//
// Ownership: the registry stores bare function pointers; it owns nothing.
// A SolverContext only *borrows* session state — every pointer in it is
// owned by the session (or its PipelineCache snapshot) and outlives the
// solver call; solvers must not retain any of them past their return.
//
// Thread safety: Register/Find/Names are mutex-guarded and callable from
// any thread. Registration is global and permanent (no unregister), so
// Find'ing a function pointer once published is always safe to call.
//
// Determinism: a registered solver must be a pure function of
// (context, request) — MinerSession::MineAll invokes solvers from multiple
// worker threads concurrently, and the facade's bit-identical batching /
// shared-cache guarantees only extend to solvers that honor this.

#ifndef DCS_API_SOLVER_REGISTRY_H_
#define DCS_API_SOLVER_REGISTRY_H_

#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "api/mining.h"
#include "core/newsea.h"  // SmartInitBounds
#include "graph/graph.h"
#include "util/status.h"

namespace dcs {

class ThreadPool;  // util/thread_pool.h

/// \brief Read-only view of the session's prepared pipeline artifacts that a
/// solver may consume. Pointers are owned by the session and outlive the
/// solver call; `positive_part` and `smart_bounds` are set whenever the
/// request mines graph affinity (or names a non-builtin solver).
struct SolverContext {
  /// The full signed difference graph after discretize/clamp.
  const Graph* difference = nullptr;
  /// GD+ (Graph::PositivePart of `difference`), or nullptr.
  const Graph* positive_part = nullptr;
  /// §V-D smart-initialization bounds of `positive_part`, or nullptr.
  const SmartInitBounds* smart_bounds = nullptr;
  /// True once the session has run the non-negativity scan on
  /// `positive_part`; solvers may then skip their own per-solve scan.
  bool positive_part_validated = false;
  /// The session's shared worker pool for intra-request parallelism; may be
  /// null (solvers must degrade to sequential or spawn transiently).
  ThreadPool* pool = nullptr;
  /// Intra-request worker budget the session grants this solve (>= 1).
  /// MineAll splits the pool budget between concurrent requests; Mine grants
  /// the whole budget. Solvers honor it when the request's own parallelism
  /// knob says "auto" (0).
  uint32_t parallelism_budget = 1;
  /// Previous solution's support for warm starting; empty unless the request
  /// opted in and the session has one.
  std::span<const VertexId> warm_support;
  /// Cooperative cancellation token of this solve, or nullptr. Solvers
  /// should poll it at coarse safe points and abort with Status::Cancelled;
  /// the builtin "dcsga" solver threads it into the NewSEA seed loop. A
  /// solver that ignores the token just cancels less promptly.
  const CancelToken* cancel = nullptr;
};

/// A solver: prepared inputs + request → ranked subgraphs. Must be pure
/// (no shared mutable state) — MinerSession::MineAll invokes solvers from
/// multiple threads concurrently.
using SolverFn = Result<std::vector<RankedSubgraph>> (*)(
    const SolverContext& context, const MiningRequest& request,
    MiningTelemetry* telemetry);

/// \brief Name → SolverFn map; thread-safe.
class SolverRegistry {
 public:
  /// The process-wide registry, with the builtin solvers ("dcsad", "dcsga")
  /// pre-registered.
  static SolverRegistry& Global();

  /// Registers `fn` under `name`; fails with AlreadyExists on a duplicate
  /// name and InvalidArgument on an empty name or null fn.
  Status Register(const std::string& name, SolverFn fn);

  /// The solver registered under `name`, or nullptr.
  SolverFn Find(const std::string& name) const;

  /// Registered names, ascending.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SolverFn> solvers_;
};

}  // namespace dcs

#endif  // DCS_API_SOLVER_REGISTRY_H_
