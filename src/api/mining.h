// Public request/response vocabulary of the libdcs mining facade.
//
// The api/ layer is the one surface tools and applications program against:
// a MiningRequest describes *what* to mine (measure, difference-graph
// pipeline, ranking), a MinerSession (api/miner_session.h) decides *how*
// (caching, dispatch, batching), and a MiningResponse carries the ranked
// subgraphs plus a telemetry block. Everything below core/ is an internal
// layer; this header deliberately re-exports the few internal types a caller
// legitimately needs (Graph, DiscretizeSpec, the DCSGA solver knobs) so that
// consumers never include core/ or densest/ headers directly.
//
// Ownership: every type here is a plain value — requests, responses and
// telemetry own their data outright, are freely copyable/movable, and hold
// no reference back into any session.
//
// Thread safety: values, so const access is safe anywhere; distinct
// instances never share state.
//
// Determinism: with warm_start off, a MiningResponse is a pure function of
// the session's graphs and the request — independent of thread counts,
// batching, async queueing and pipeline-cache sharing. The exceptions are
// enumerated on MiningTelemetry (wall times, cache counters, and — under
// intra-request parallelism — the work counters).

#ifndef DCS_API_MINING_H_
#define DCS_API_MINING_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/newsea.h"       // re-exports DcsgaOptions (solver knobs)
#include "graph/difference.h"  // re-exports DiscretizeSpec
#include "graph/graph.h"       // re-exports Graph, VertexId, Edge
#include "util/status.h"

namespace dcs {

/// Which density-contrast measure(s) a request mines (§III of the paper).
enum class Measure : uint8_t {
  kAverageDegree,  ///< DCSAD: max W_D(S)/|S| via DCSGreedy (Algorithm 2)
  kGraphAffinity,  ///< DCSGA: max xᵀDx via NewSEA (Algorithm 5)
  kBoth,           ///< mine both measures in one request
};

/// "ad", "ga" or "both".
const char* MeasureToString(Measure measure);

/// Parses "ad" / "ga" / "both" (the dcs_mine flag values); fails otherwise.
Result<Measure> ParseMeasure(std::string_view name);

/// \brief Position on the graceful-degradation ladder of a session (or the
/// service wrapping it) with respect to its persistent store.
///
/// kHealthy: no store failures observed (or no store attached — persistence
/// was never promised). kDegraded: the store reported write-back failures
/// but stays attached; loads and write-backs keep being attempted.
/// kStoreOffline: failures reached SessionOptions::store_failure_threshold
/// and the session *detached* the store — mining continues memory-only and
/// bit-identically (results never depended on persistence), only warm-boot
/// durability is lost. Transitions are strictly downward and counted in
/// MiningTelemetry::health_transitions.
enum class HealthState : uint8_t {
  kHealthy,
  kDegraded,
  kStoreOffline,
};

/// "healthy", "degraded" or "store-offline".
const char* HealthStateToString(HealthState state);

/// Which input graph a streaming update applies to.
enum class UpdateSide : uint8_t {
  kG1,  ///< baseline / historical graph (enters D with weight −α·w)
  kG2,  ///< current graph (enters D with weight +w)
};

/// An input edge for BuildGraphFromEdges.
struct WeightedEdge {
  VertexId u;
  VertexId v;
  double weight;
};

/// \brief Builds an immutable Graph from explicit edges — the facade-level
/// alternative to graph/graph_builder.h. Duplicate edges accumulate; fails
/// on self-loops, out-of-range endpoints, or non-finite weights.
Result<Graph> BuildGraphFromEdges(VertexId num_vertices,
                                  std::span<const WeightedEdge> edges);

/// \brief One mining query against a MinerSession.
///
/// The difference-graph pipeline is: D = A2 − α·A1 (swapped when `flip`),
/// then optional Discrete mapping, then optional heavy-edge clamping. Two
/// requests with equal pipeline fields share the session's cached difference
/// graph regardless of their measure/ranking fields.
struct MiningRequest {
  Measure measure = Measure::kBoth;

  // --- difference-graph pipeline (cache key) ---
  /// §III-D scale of G1; must be finite and positive.
  double alpha = 1.0;
  /// Mine G1 − G2 instead of G2 − G1 ("disappearing" direction, §VI-B).
  bool flip = false;
  /// Apply the paper's Discrete weight mapping (§VI-B) when set.
  std::optional<DiscretizeSpec> discretize;
  /// Replace every weight w by min(w, cap) when set (§III-D heavy-edge
  /// adjustment); the cap must be finite and positive.
  std::optional<double> clamp_weights_above;

  // --- ranking ---
  /// Mine up to this many subgraphs per measure (the §VII future-work
  /// extension; 1 = the paper's single-DCS setting).
  uint32_t top_k = 1;
  /// Require top-k DCSGA cliques to be pairwise vertex-disjoint.
  bool disjoint = true;
  /// Drop DCSAD subgraphs with density difference <= this.
  double min_density = 0.0;
  /// Drop DCSGA cliques with affinity difference <= this.
  double min_affinity = 0.0;

  // --- solver knobs ---
  /// Inner DCSGA solver configuration (shrink kind, descent tolerances, and
  /// the intra-request `parallelism` knob: 1 = sequential, 0 = auto — take
  /// whatever share of the session's thread budget MineAll/Mine grants —
  /// k > 1 = exactly k seed shards, capped by the session pool). Mined
  /// subgraphs are bit-identical across all parallelism values; only the
  /// work-counter telemetry varies. The builtin "dcsga" solver honors the
  /// knob for top_k == 1 solves; the top-k clique harvest runs sequentially
  /// (its collected-clique set depends on seed order).
  DcsgaOptions ga_solver;
  /// Seed the DCSGA solve from the session's previous solution (streaming
  /// drift tracking). Off by default so that requests are pure functions of
  /// the session's graphs — the precondition for batched MineAll to equal
  /// sequential mining bit-for-bit.
  bool warm_start = false;

  /// Scheduling priority of the job under a multi-tenant MiningService
  /// (api/mining_service.h): when several tenants have runnable work, the
  /// scheduler dispatches the tenant whose head job has the highest
  /// priority first (ties broken by the weighted-fair virtual clock).
  /// Priority never reorders jobs *within* a tenant — each tenant's queue
  /// stays strict FIFO, which is what keeps update fencing and per-tenant
  /// bit-identity intact. Ignored by synchronous MinerSession::Mine.
  int32_t priority = 0;

  /// Per-job deadline in seconds, measured from submission (so queue wait
  /// counts — the admission-control view). 0 = no deadline. Enforced by
  /// MiningService's watchdog, which fires the job's CancelToken at the
  /// deadline: the job lands in kFailed carrying StatusCode::
  /// kDeadlineExceeded, keeps no partial result, and the session stays
  /// reusable. Synchronous MinerSession::Mine ignores the field (callers
  /// owning the thread can wrap their own CancelToken; dcs_mine --deadline
  /// does exactly that).
  double deadline_seconds = 0.0;

  /// Registry names of the solvers to dispatch to (api/solver_registry.h);
  /// replaceable without touching MinerSession.
  std::string ad_solver_name = "dcsad";
  std::string ga_solver_name = "dcsga";

  /// Field-level validation; every MinerSession entry point calls this.
  Status Validate() const;
};

/// One mined subgraph, ranked within its measure.
struct RankedSubgraph {
  /// Member vertices, ascending.
  std::vector<VertexId> vertices;
  /// The measure value: density difference ρ_D(S) for DCSAD, affinity
  /// difference xᵀDx for DCSGA.
  double value = 0.0;
  /// DCSGA only: embedding mass per vertex (parallel to `vertices`, sums to
  /// 1). Empty for DCSAD results.
  std::vector<double> weights;
  /// DCSAD only: the data-dependent approximation ratio β of Theorem 2.
  double ratio_bound = 0.0;
  /// True iff the subgraph is a positive clique of the difference graph —
  /// guaranteed for DCSGA output (Theorem 5), informational for DCSAD.
  bool positive_clique = false;
};

/// Counters and timings of one request's execution.
struct MiningTelemetry {
  uint64_t initializations = 0;     ///< DCSGA seeds actually tried
  /// DCSGA candidate seeds never descended from (Theorem 6 smart-init
  /// pruning). With intra-request parallelism on, this and the iteration
  /// counters depend on thread timing; the mined subgraphs never do.
  uint64_t pruned_seeds = 0;
  uint64_t cd_iterations = 0;       ///< coordinate-descent iterations total
  uint64_t replicator_sweeps = 0;   ///< replicator baseline only
  uint32_t expansion_errors = 0;    ///< replicator baseline only
  /// Session-lifetime difference-graph rebuild count *after* this request
  /// (flat across requests ⇔ the cache served them).
  uint64_t session_rebuilds = 0;
  /// Streaming update-path counters *after* this request (session-lifetime,
  /// deterministic): pending-update flushes folded by the O(Δ) CSR patch
  /// path vs. by a full graph rebuild (the Δ/m crossover of
  /// SessionOptions::patch_rebuild_ratio), and cached pipeline entries the
  /// patch path republished under the new graph fingerprint instead of
  /// letting post-update queries cold-miss.
  uint64_t update_patches = 0;
  uint64_t update_rebuilds = 0;
  uint64_t patched_entries_republished = 0;
  /// True iff this request's difference graph came from the pipeline cache —
  /// prepared earlier by this session, or by *any* session sharing the cache
  /// (api/pipeline_cache.h).
  bool reused_cached_difference = false;
  /// PipelineCache counters *after* this request. Cache-lifetime values,
  /// shared across every session attached to the cache, so under a shared
  /// cache they depend on which sessions got there first — like the
  /// wall-times, they are telemetry, never part of the mined result.
  uint64_t pipeline_cache_hits = 0;
  uint64_t pipeline_cache_misses = 0;
  /// Bytes resident in the pipeline cache after this request.
  uint64_t pipeline_cache_bytes = 0;
  /// Persistent-store counters *after* this request (all 0 when no
  /// ArtifactStore is attached — see SessionOptions::artifact_store).
  /// Hits/misses are session-lifetime: pipelines this session served from
  /// disk (warm boots and lazy loads) vs. pipelines it asked the store for
  /// and had to build. Corrupt pages are store-lifetime: record pages the
  /// attached store rejected (bad checksum, bad framing, content-key
  /// mismatch) and silently rebuilt over.
  uint64_t store_hits = 0;
  uint64_t store_misses = 0;
  uint64_t store_corrupt_pages = 0;
  /// Failure-domain counters *after* this request. Write errors and retries
  /// are store-lifetime (snapshotted by the session, so they survive a
  /// store-offline detach); the health fields are session-lifetime. All
  /// telemetry-only: like the cache counters, they never influence mined
  /// subgraphs — a degraded or store-offline session mines bit-identically.
  uint64_t store_write_errors = 0;
  uint64_t store_retries = 0;
  HealthState health_state = HealthState::kHealthy;
  uint64_t health_transitions = 0;
  /// True iff a warm-start seed was attempted for the DCSGA solve.
  bool warm_start_used = false;
  /// Wall time spent materializing pipeline artifacts (0 on cache hits) and
  /// solving. Like the pipeline_cache_* counters above, non-deterministic;
  /// every other response field is a pure function of graphs + request.
  double build_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Kernel-layer dispatch counters (core/kernels.h) *after* this request.
  /// Process-lifetime (the kernel counters are shared by every session in
  /// the process) and telemetry-only: which ISA served a kernel never
  /// influences the mined subgraphs — the default kernels are bit-identical
  /// across ISAs. kernel_simd_active reports whether dispatch currently
  /// selects the AVX2 variants.
  uint64_t kernel_simd_calls = 0;
  uint64_t kernel_scalar_calls = 0;
  bool kernel_simd_active = false;
  /// Job-journal counters *after* this request (all 0 when the service runs
  /// without MiningServiceOptions::journal_path — or outside a service).
  /// Journal-lifetime: records appended through the service's handle, jobs
  /// the service recovered at construction, and unreliable-tail truncation
  /// events. Telemetry-only, like every counter above — and deliberately
  /// *not* part of the journaled response content, so recovered responses
  /// stay bit-identical to the mined subgraphs.
  uint64_t journal_appends = 0;
  uint64_t journal_recovered_jobs = 0;
  uint64_t journal_truncations = 0;
};

/// \brief Response to one MiningRequest.
///
/// `average_degree` is filled for measures kAverageDegree/kBoth and
/// `graph_affinity` for kGraphAffinity/kBoth; either may be empty when no
/// subgraph clears the request's min_density / min_affinity floor.
struct MiningResponse {
  std::vector<RankedSubgraph> average_degree;
  std::vector<RankedSubgraph> graph_affinity;
  MiningTelemetry telemetry;
};

}  // namespace dcs

#endif  // DCS_API_MINING_H_
