// Facade re-export of the persistent artifact store.
//
// The store/ layer is internal like core/, but the disk-backed artifact
// cache (ArtifactStore) is part of the deployment surface: tools
// (dcs_mine --store, dcs_store) and examples open stores, inspect them and
// hand them to sessions via SessionOptions::artifact_store. They include
// this header instead of reaching into store/ so the layering rule — tools
// and examples consume api/, graph/io.h and util/ only — stays greppable.

#ifndef DCS_API_ARTIFACT_STORE_H_
#define DCS_API_ARTIFACT_STORE_H_

#include "store/artifact_store.h"  // ArtifactStore, stats/fsck reports

#endif  // DCS_API_ARTIFACT_STORE_H_
