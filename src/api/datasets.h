// Facade re-export of the synthetic dataset generators.
//
// The gen/ layer is internal like core/, but its generators (the paper's
// synthetic DBLP/keyword/social analogs and the random-graph factories) are
// a legitimate part of the demo and benchmarking surface. Examples include
// this header instead of reaching into gen/ so the layering rule — tools and
// examples consume api/, graph/io.h and util/ only — stays greppable.

#ifndef DCS_API_DATASETS_H_
#define DCS_API_DATASETS_H_

#include "gen/coauthor.h"        // GenerateCoauthorData (§VI-B analog)
#include "gen/interest_social.h" // interest/social pair generator
#include "gen/keywords.h"        // GenerateKeywordData (Tables V/VI analog)
#include "gen/random_graphs.h"   // ErdosRenyi*, ChungLu, RandomSignedGraph
#include "gen/signed_pair.h"     // planted contrast pair generator

#endif  // DCS_API_DATASETS_H_
