#include "api/mining.h"

#include <cmath>

#include "graph/graph_builder.h"

namespace dcs {

const char* MeasureToString(Measure measure) {
  switch (measure) {
    case Measure::kAverageDegree:
      return "ad";
    case Measure::kGraphAffinity:
      return "ga";
    case Measure::kBoth:
      return "both";
  }
  return "unknown";
}

const char* HealthStateToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kStoreOffline:
      return "store-offline";
  }
  return "unknown";
}

Result<Measure> ParseMeasure(std::string_view name) {
  if (name == "ad") return Measure::kAverageDegree;
  if (name == "ga") return Measure::kGraphAffinity;
  if (name == "both") return Measure::kBoth;
  return Status::InvalidArgument("unknown measure '" + std::string(name) +
                                 "' (expected ad, ga or both)");
}

Result<Graph> BuildGraphFromEdges(VertexId num_vertices,
                                  std::span<const WeightedEdge> edges) {
  GraphBuilder builder(num_vertices);
  for (const WeightedEdge& e : edges) {
    DCS_RETURN_NOT_OK(builder.AddEdge(e.u, e.v, e.weight));
  }
  return builder.Build();
}

Status MiningRequest::Validate() const {
  if (!std::isfinite(alpha) || alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be finite and positive");
  }
  if (top_k == 0) {
    return Status::InvalidArgument("top_k must be >= 1");
  }
  if (discretize.has_value()) {
    DCS_RETURN_NOT_OK(discretize->Validate());
  }
  if (clamp_weights_above.has_value() &&
      (!std::isfinite(*clamp_weights_above) || *clamp_weights_above <= 0.0)) {
    return Status::InvalidArgument(
        "clamp_weights_above must be finite and positive");
  }
  if (!std::isfinite(min_density) || !std::isfinite(min_affinity)) {
    return Status::InvalidArgument(
        "min_density and min_affinity must be finite");
  }
  if (ad_solver_name.empty() || ga_solver_name.empty()) {
    return Status::InvalidArgument("solver names must be non-empty");
  }
  if (!std::isfinite(deadline_seconds) || deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "deadline_seconds must be finite and >= 0 (0 = no deadline)");
  }
  return Status::OK();
}

}  // namespace dcs
