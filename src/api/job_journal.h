// Facade re-export of the crash-consistent job journal.
//
// The store/ layer is internal like core/, but the write-ahead job journal
// (JobJournal) is part of the deployment surface: tools (dcs_mine --journal,
// dcs_store journal ...) open journals, inspect them and hand their paths to
// services via MiningServiceOptions::journal_path. They include this header
// instead of reaching into store/ so the layering rule — tools and examples
// consume api/, graph/io.h and util/ only — stays greppable.

#ifndef DCS_API_JOB_JOURNAL_H_
#define DCS_API_JOB_JOURNAL_H_

#include "store/job_journal.h"  // JobJournal, stats/fsck reports

#endif  // DCS_API_JOB_JOURNAL_H_
