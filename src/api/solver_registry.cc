#include "api/solver_registry.h"

#include <algorithm>
#include <utility>

#include "core/dcs_greedy.h"
#include "core/embedding.h"
#include "core/refinement.h"
#include "core/seacd.h"
#include "core/topk.h"
#include "graph/stats.h"
#include "util/logging.h"

namespace dcs {
namespace {

// Builtin "dcsad": DCSGreedy (Algorithm 2) for top_k == 1, iterated
// peel-and-remove (core/topk.h) beyond.
Result<std::vector<RankedSubgraph>> SolveDcsadBuiltin(
    const SolverContext& context, const MiningRequest& request,
    MiningTelemetry* telemetry) {
  (void)telemetry;
  if (context.difference == nullptr) {
    return Status::Internal("dcsad solver invoked without a difference graph");
  }
  const Graph& gd = *context.difference;
  std::vector<RankedSubgraph> out;
  if (request.top_k == 1) {
    DCS_ASSIGN_OR_RETURN(DcsadResult best, RunDcsGreedy(gd));
    if (best.density > request.min_density) {
      RankedSubgraph ranked;
      ranked.vertices = std::move(best.subset);
      std::sort(ranked.vertices.begin(), ranked.vertices.end());
      ranked.value = best.density;
      ranked.ratio_bound = best.ratio_bound;
      ranked.positive_clique = IsPositiveClique(gd, ranked.vertices);
      out.push_back(std::move(ranked));
    }
    return out;
  }
  TopkDcsadOptions options;
  options.k = request.top_k;
  options.min_density = request.min_density;
  DCS_ASSIGN_OR_RETURN(std::vector<RankedDcsad> rounds,
                       MineTopKDcsad(gd, options));
  out.reserve(rounds.size());
  for (RankedDcsad& round : rounds) {
    RankedSubgraph ranked;
    ranked.vertices = std::move(round.subset);
    std::sort(ranked.vertices.begin(), ranked.vertices.end());
    ranked.value = round.density;
    ranked.ratio_bound = round.ratio_bound;
    ranked.positive_clique = IsPositiveClique(gd, ranked.vertices);
    out.push_back(std::move(ranked));
  }
  return out;
}

// Builtin "dcsga": NewSEA (Algorithm 5) with optional warm-start seed for
// top_k == 1, the all-initializations clique harvest beyond.
Result<std::vector<RankedSubgraph>> SolveDcsgaBuiltin(
    const SolverContext& context, const MiningRequest& request,
    MiningTelemetry* telemetry) {
  if (context.positive_part == nullptr || context.difference == nullptr) {
    return Status::Internal("dcsga solver invoked without GD+/GD");
  }
  const Graph& gd_plus = *context.positive_part;
  const Graph& gd = *context.difference;
  std::vector<RankedSubgraph> out;

  // Resolve the session-granted knobs into the solver options: "auto"
  // parallelism (0) becomes the budget MineAll/Mine split off the pool, and
  // the per-solve non-negativity scan is skipped once the session has
  // validated the cached pipeline's GD+.
  DcsgaOptions solver_options = request.ga_solver;
  if (solver_options.parallelism == 0) {
    solver_options.parallelism = std::max(context.parallelism_budget, 1u);
  }
  solver_options.assume_nonnegative =
      solver_options.assume_nonnegative || context.positive_part_validated;
  // The explicit per-solve token (Mine/MineAll's `cancel` argument, the
  // async service's per-job token) always wins over a request-embedded
  // DcsgaOptions::cancel — otherwise an embedded token would make the
  // documented cancel argument unreachable for the seed loop. The embedded
  // token still applies when no per-solve token is given.
  if (context.cancel != nullptr) {
    solver_options.cancel = context.cancel;
  }

  if (request.top_k == 1) {
    Result<DcsgaResult> fresh =
        context.smart_bounds != nullptr
            ? RunNewSea(gd_plus, *context.smart_bounds, solver_options,
                        context.pool)
            : RunNewSea(gd_plus, ComputeSmartInitBounds(gd_plus),
                        solver_options, context.pool);
    if (!fresh.ok()) return fresh.status();
    DcsgaResult best = std::move(*fresh);
    telemetry->initializations += best.initializations;
    telemetry->pruned_seeds += best.pruned_seeds;
    telemetry->cd_iterations += best.cd_iterations;
    telemetry->replicator_sweeps += best.replicator_sweeps;
    telemetry->expansion_errors += best.expansion_errors;

    bool warm_valid = !context.warm_support.empty();
    for (VertexId v : context.warm_support) {
      warm_valid &= v < gd_plus.NumVertices();
    }
    if (warm_valid) {
      // One extra initialization from the previous solution's support; kept
      // only when it strictly beats the fresh solve, so warm starting never
      // degrades the answer.
      AffinityState state(gd_plus);
      state.set_fast_math(solver_options.fast_math);
      const Status reset = state.ResetToEmbedding(Embedding::UniformOn(
          gd_plus.NumVertices(), context.warm_support));
      if (reset.ok()) {
        telemetry->warm_start_used = true;
        telemetry->initializations += 1;
        const SeacdRunStats shrink =
            RunSeacdInPlace(&state, solver_options.seacd);
        const RefinementRunStats refined =
            RefineInPlace(&state, solver_options.refinement_descent);
        telemetry->cd_iterations +=
            shrink.cd_iterations + refined.cd_iterations;
        if (refined.affinity > best.affinity) {
          best.affinity = refined.affinity;
          best.x = state.ToEmbedding();
          best.support = best.x.Support();
        }
      }
    }

    if (best.affinity > request.min_affinity) {
      RankedSubgraph ranked;
      ranked.vertices = std::move(best.support);
      ranked.weights.reserve(ranked.vertices.size());
      for (VertexId v : ranked.vertices) ranked.weights.push_back(best.x.x[v]);
      ranked.value = best.affinity;
      ranked.positive_clique = IsPositiveClique(gd, ranked.vertices);
      out.push_back(std::move(ranked));
    }
    return out;
  }

  TopkDcsgaOptions options;
  options.k = request.top_k;
  options.disjoint = request.disjoint;
  options.min_affinity = request.min_affinity;
  options.solver = solver_options;
  DCS_ASSIGN_OR_RETURN(std::vector<CliqueRecord> cliques,
                       MineTopKDcsga(gd_plus, options));
  out.reserve(cliques.size());
  for (CliqueRecord& clique : cliques) {
    RankedSubgraph ranked;
    ranked.vertices = std::move(clique.members);
    ranked.weights = std::move(clique.weights);
    ranked.value = clique.affinity;
    ranked.positive_clique = IsPositiveClique(gd, ranked.vertices);
    out.push_back(std::move(ranked));
  }
  return out;
}

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    DCS_CHECK(r->Register("dcsad", &SolveDcsadBuiltin).ok());
    DCS_CHECK(r->Register("dcsga", &SolveDcsgaBuiltin).ok());
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(const std::string& name, SolverFn fn) {
  if (name.empty()) {
    return Status::InvalidArgument("solver name must be non-empty");
  }
  if (fn == nullptr) {
    return Status::InvalidArgument("solver function must be non-null");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!solvers_.emplace(name, fn).second) {
    return Status::AlreadyExists("solver '" + name + "' already registered");
  }
  return Status::OK();
}

SolverFn SolverRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& [name, fn] : solvers_) names.push_back(name);
  return names;
}

}  // namespace dcs
