// Streaming contrast monitoring — §I's "real-time story identification"
// scenario on a live keyword-association stream.
//
// A streaming MinerSession receives co-occurrence weight updates (G1 = the
// historical association strengths, G2 = the live window) and is queried
// after every batch; warm_start seeds each query from the previous story so
// drift is tracked cheaply. Watch the affinity DCS lock onto a breaking
// story as its keyword clique builds up, then fade as the story is absorbed
// into the baseline.
//
// Run:  ./build/examples/streaming_monitor [seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/datasets.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;
  Rng rng(seed);

  const VertexId kVocabulary = 400;
  const std::vector<std::string> story_words{"earthquake", "coast", "tsunami",
                                             "warning"};
  const VertexId story_base = kVocabulary;  // ids 400..403
  Result<MinerSession> monitor = MinerSession::CreateStreaming(kVocabulary + 4);
  if (!monitor.ok()) return 1;

  // Historical baseline: background keyword chatter, mirrored into the live
  // window at roughly the same strength (so the contrast starts flat).
  Result<Graph> chatter = ErdosRenyiWeighted(kVocabulary, 0.02, 0.2, 1.5, &rng);
  if (!chatter.ok()) return 1;
  for (const Edge& e : chatter->UndirectedEdges()) {
    if (!monitor->ApplyUpdate(UpdateSide::kG1, e.u, e.v, e.weight).ok() ||
        !monitor
             ->ApplyUpdate(UpdateSide::kG2, e.u, e.v,
                           e.weight + rng.Uniform(-0.1, 0.1))
             .ok()) {
      return 1;
    }
  }

  MiningRequest query;
  query.measure = Measure::kGraphAffinity;
  query.warm_start = true;  // re-seed from the previous tick's story

  std::printf("tick | story pair-weight | DCS affinity | DCS keywords\n");
  std::printf("-----|-------------------|--------------|-------------\n");
  for (int tick = 1; tick <= 8; ++tick) {
    // Ticks 2-5: the story breaks — its keywords co-occur harder each tick.
    // Ticks 6-8: the story also enters the historical baseline (absorbed).
    if (tick >= 2 && tick <= 5) {
      for (VertexId i = 0; i < 4; ++i) {
        for (VertexId j = i + 1; j < 4; ++j) {
          if (!monitor
                   ->ApplyUpdate(UpdateSide::kG2, story_base + i,
                                 story_base + j, 1.5)
                   .ok()) {
            return 1;
          }
        }
      }
    }
    if (tick >= 6) {
      for (VertexId i = 0; i < 4; ++i) {
        for (VertexId j = i + 1; j < 4; ++j) {
          if (!monitor
                   ->ApplyUpdate(UpdateSide::kG1, story_base + i,
                                 story_base + j, 2.0)
                   .ok()) {
            return 1;
          }
        }
      }
    }

    Result<MiningResponse> response = monitor->Mine(query);
    if (!response.ok()) return 1;
    double story_weight = 0.0;
    {
      Result<Graph> gd = monitor->DifferenceSnapshot();
      if (!gd.ok()) return 1;
      story_weight = gd->EdgeWeight(story_base, story_base + 1);
    }
    double affinity = 0.0;
    std::string keywords = "(none)";
    if (!response->graph_affinity.empty()) {
      const RankedSubgraph& story = response->graph_affinity.front();
      affinity = story.value;
      keywords.clear();
      for (VertexId v : story.vertices) {
        if (!keywords.empty()) keywords += " ";
        keywords += v >= story_base ? story_words[v - story_base]
                                    : "kw" + std::to_string(v);
      }
    }
    std::printf("%4d | %17.2f | %12.3f | %s\n", tick, story_weight, affinity,
                keywords.c_str());
  }
  std::printf(
      "\nupdates applied: %llu, difference rebuilds: %llu, patched flushes: "
      "%llu (the bulk load rebuilds once; each later tick's batch is spliced "
      "in O(delta) and the cached pipeline republished)\n",
      static_cast<unsigned long long>(monitor->num_updates()),
      static_cast<unsigned long long>(monitor->num_rebuilds()),
      static_cast<unsigned long long>(monitor->num_update_patches()));
  return 0;
}
