// Quickstart: the 60-second tour of libdcs, facade edition.
//
// Builds two tiny graphs over the same vertices, opens a MinerSession on
// them, and mines the Density Contrast Subgraph under both measures:
//   * average degree  (DCSGreedy, Algorithm 2)
//   * graph affinity  (NewSEA,    Algorithm 5)
// The session owns the whole difference-graph pipeline; this file never
// touches the internal core/ solvers.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"

int main() {
  using namespace dcs;

  // Two relation graphs over the same 6 entities. Think of G1 as last
  // year's interaction strengths and G2 as this year's.
  const std::vector<WeightedEdge> g1_edges{
      {0, 1, 3.0},  // a stable pair: equally strong in both years
      {1, 2, 4.0},  // a cooling relation: strong before...
      {3, 4, 0.5},  // the emerging triangle {3,4,5}: weak before...
  };
  const std::vector<WeightedEdge> g2_edges{
      {0, 1, 3.0},  // ...cancels in GD
      {1, 2, 1.0},  // ...weak now -> negative in GD
      {3, 4, 4.0},  // ...strong now -> positive in GD
      {4, 5, 3.5},
      {3, 5, 3.0},
  };
  Result<Graph> g1 = BuildGraphFromEdges(6, g1_edges);
  Result<Graph> g2 = BuildGraphFromEdges(6, g2_edges);
  if (!g1.ok() || !g2.ok()) {
    std::fprintf(stderr, "graph construction failed\n");
    return 1;
  }

  Result<MinerSession> session =
      MinerSession::Create(std::move(*g1), std::move(*g2));
  if (!session.ok()) {
    std::fprintf(stderr, "session setup failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  // The difference graph D = A2 − A1 (§III of the paper).
  Result<Graph> gd = session->DifferenceSnapshot();
  if (!gd.ok()) {
    std::fprintf(stderr, "difference failed: %s\n",
                 gd.status().ToString().c_str());
    return 1;
  }
  std::printf("difference graph: %s\n\n", gd->DebugString().c_str());

  // One request, both measures.
  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> response = session->Mine(request);
  if (!response.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  // --- DCS w.r.t. average degree (DCSAD) ---
  if (!response->average_degree.empty()) {
    const RankedSubgraph& dcsad = response->average_degree.front();
    std::printf("DCSAD (average degree):\n  subset = {");
    for (size_t i = 0; i < dcsad.vertices.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", dcsad.vertices[i]);
    }
    std::printf("}\n  density difference = %.3f (ratio bound %.2f)\n\n",
                dcsad.value, dcsad.ratio_bound);
  }

  // --- DCS w.r.t. graph affinity (DCSGA) ---
  // Theorem 5: the optimum is a positive clique of GD.
  if (!response->graph_affinity.empty()) {
    const RankedSubgraph& dcsga = response->graph_affinity.front();
    std::printf("DCSGA (graph affinity):\n  support = {");
    for (size_t i = 0; i < dcsga.vertices.size(); ++i) {
      std::printf("%s%u (%.2f)", i ? ", " : "", dcsga.vertices[i],
                  dcsga.weights[i]);
    }
    std::printf("}\n  affinity difference = %.3f\n", dcsga.value);
    std::printf("  positive clique: %s\n",
                dcsga.positive_clique ? "yes" : "no");
  }
  std::printf("  initializations used: %llu (of %u vertices)\n",
              static_cast<unsigned long long>(
                  response->telemetry.initializations),
              session->num_vertices());
  return 0;
}
