// Quickstart: the 60-second tour of libdcs.
//
// Builds two tiny graphs over the same vertices, forms the difference graph
// GD = G2 − G1, and mines the Density Contrast Subgraph under both measures:
//   * average degree  (DCSGreedy, Algorithm 2)
//   * graph affinity  (NewSEA,    Algorithm 5)
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "graph/difference.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"

int main() {
  using namespace dcs;

  // Two relation graphs over the same 6 entities. Think of G1 as last
  // year's interaction strengths and G2 as this year's.
  GraphBuilder b1(6), b2(6);
  // A stable pair: equally strong in both years -> cancels in GD.
  b1.AddEdgeUnchecked(0, 1, 3.0);
  b2.AddEdgeUnchecked(0, 1, 3.0);
  // A cooling relation: strong before, weak now -> negative in GD.
  b1.AddEdgeUnchecked(1, 2, 4.0);
  b2.AddEdgeUnchecked(1, 2, 1.0);
  // An emerging triangle {3,4,5}: weak before, strong now -> positive in GD.
  b1.AddEdgeUnchecked(3, 4, 0.5);
  b2.AddEdgeUnchecked(3, 4, 4.0);
  b2.AddEdgeUnchecked(4, 5, 3.5);
  b2.AddEdgeUnchecked(3, 5, 3.0);

  Result<Graph> g1 = b1.Build();
  Result<Graph> g2 = b2.Build();
  if (!g1.ok() || !g2.ok()) {
    std::fprintf(stderr, "graph construction failed\n");
    return 1;
  }

  // The difference graph D = A2 − A1 (§III of the paper).
  Result<Graph> gd = BuildDifferenceGraph(*g1, *g2);
  if (!gd.ok()) {
    std::fprintf(stderr, "difference failed: %s\n",
                 gd.status().ToString().c_str());
    return 1;
  }
  std::printf("difference graph: %s\n\n", gd->DebugString().c_str());

  // --- DCS w.r.t. average degree (DCSAD) ---
  Result<DcsadResult> dcsad = RunDcsGreedy(*gd);
  if (!dcsad.ok()) {
    std::fprintf(stderr, "DCSGreedy failed\n");
    return 1;
  }
  std::printf("DCSAD (average degree):\n  subset = {");
  for (size_t i = 0; i < dcsad->subset.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", dcsad->subset[i]);
  }
  std::printf("}\n  density difference = %.3f (ratio bound %.2f)\n\n",
              dcsad->density, dcsad->ratio_bound);

  // --- DCS w.r.t. graph affinity (DCSGA) ---
  // Theorem 5: the optimum is a positive clique, so NewSEA runs on GD+.
  Result<DcsgaResult> dcsga = RunNewSea(gd->PositivePart());
  if (!dcsga.ok()) {
    std::fprintf(stderr, "NewSEA failed\n");
    return 1;
  }
  std::printf("DCSGA (graph affinity):\n  support = {");
  for (size_t i = 0; i < dcsga->support.size(); ++i) {
    std::printf("%s%u (%.2f)", i ? ", " : "", dcsga->support[i],
                dcsga->x.x[dcsga->support[i]]);
  }
  std::printf("}\n  affinity difference = %.3f\n", dcsga->affinity);
  std::printf("  positive clique: %s\n",
              IsPositiveClique(*gd, dcsga->support) ? "yes" : "no");
  std::printf("  initializations used: %llu (of %u vertices)\n",
              static_cast<unsigned long long>(dcsga->initializations),
              gd->NumVertices());
  return 0;
}
