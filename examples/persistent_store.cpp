// Persistent artifact store — surviving a restart without the rebuild storm.
//
// Every in-memory cache (the session's private pipeline, a shared
// PipelineCache) dies with the process. This example simulates two process
// lifetimes over the same graph pair: the first attaches an ArtifactStore
// file, mines, and writes its prepared pipeline back; the "restarted"
// second process reopens the file and warm-boots the pipeline from disk —
// same answer, bit for bit, without rebuilding the difference graph, GD+,
// or the smart-init bounds. Corrupt or stale store bytes are never trusted:
// they read as absent and the session silently rebuilds (see `dcs_store
// fsck` for offline inspection).
//
// Run:  ./build/examples/persistent_store [store-path]

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "api/artifact_store.h"
#include "api/miner_session.h"
#include "api/mining.h"

namespace {

// One simulated process lifetime: open the store, serve a request, flush
// the asynchronous write-back before "exiting".
dcs::Result<dcs::MiningResponse> OneProcessLifetime(const dcs::Graph& g1,
                                                    const dcs::Graph& g2,
                                                    const std::string& path,
                                                    uint64_t* hits,
                                                    uint64_t* misses) {
  using namespace dcs;
  Result<std::shared_ptr<ArtifactStore>> store = ArtifactStore::Open(path);
  if (!store.ok()) return store.status();

  SessionOptions options;
  options.artifact_store = *store;  // warm boot happens at attach
  Result<MinerSession> session = MinerSession::Create(g1, g2, options);
  if (!session.ok()) return session.status();

  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> response = session->Mine(request);
  if (!response.ok()) return response;

  *hits = session->num_store_hits();
  *misses = session->num_store_misses();
  (*store)->Flush();  // drain the async write-back before process "exit"
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/libdcs_example_store.dcs";
  std::remove(path.c_str());

  // The quickstart pair: a cooling relation and an emerging triangle.
  const std::vector<WeightedEdge> g1_edges{
      {0, 1, 3.0}, {1, 2, 4.0}, {3, 4, 0.5}};
  const std::vector<WeightedEdge> g2_edges{
      {0, 1, 3.0}, {1, 2, 1.0}, {3, 4, 4.0}, {4, 5, 3.5}, {3, 5, 3.0}};
  Result<Graph> g1 = BuildGraphFromEdges(6, g1_edges);
  Result<Graph> g2 = BuildGraphFromEdges(6, g2_edges);
  if (!g1.ok() || !g2.ok()) {
    std::fprintf(stderr, "graph construction failed\n");
    return 1;
  }

  // Lifetime 1: the store is empty — a miss, a cold build, a write-back.
  uint64_t hits = 0, misses = 0;
  Result<MiningResponse> first =
      OneProcessLifetime(*g1, *g2, path, &hits, &misses);
  if (!first.ok()) {
    std::fprintf(stderr, "first lifetime failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf("process 1: %llu store hits, %llu misses (cold build)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));

  // Lifetime 2: a fresh handle on the same file — the pipeline is hydrated
  // from disk at attach time.
  Result<MiningResponse> second =
      OneProcessLifetime(*g1, *g2, path, &hits, &misses);
  if (!second.ok()) {
    std::fprintf(stderr, "second lifetime failed: %s\n",
                 second.status().ToString().c_str());
    return 1;
  }
  std::printf("process 2: %llu store hits, %llu misses (warm boot)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));

  // The determinism bar: the warmed answer equals the cold-built one.
  const RankedSubgraph& cold = first->graph_affinity.front();
  const RankedSubgraph& warm = second->graph_affinity.front();
  const bool identical =
      cold.vertices == warm.vertices && cold.value == warm.value;
  std::printf("answers bit-identical: %s  (DCSGA value %.6f, support {",
              identical ? "yes" : "NO", warm.value);
  for (size_t i = 0; i < warm.vertices.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", warm.vertices[i]);
  }
  std::printf("})\nstore file: %s (inspect with: dcs_store stat %s)\n",
              path.c_str(), path.c_str());
  return identical ? 0 : 1;
}
