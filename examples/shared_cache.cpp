// Shared pipeline cache — N users, one dataset, one preparation.
//
// The expensive prefix of every DCS solve (difference graph, GD+, the
// smart-init bounds) is a pure function of the graphs and the pipeline
// fields, so sessions serving the same dataset need not each pay it. This
// demo plays a small serving fleet: four "users" each open their own
// MinerSession over copies of the same two-era co-author network, all
// attached to one dcs::PipelineCache. Exactly one session builds the
// pipeline; the rest hit the shared entry, and every answer is
// bit-identical to a private-cache solve. A streaming update then shows the
// copy-on-write invalidation: the updating session moves to a fresh cache
// entry while the others keep hitting the old one.
//
// Run:  ./build/examples/shared_cache [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "api/datasets.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "api/pipeline_cache.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  // The shared dataset: a two-era co-author network with planted groups.
  CoauthorConfig config;
  config.num_authors = 1200;
  config.emerging_sizes = {5, 7};
  config.disappearing_sizes = {6};
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  if (!data.ok()) return 1;

  MiningRequest request;
  request.measure = Measure::kGraphAffinity;

  // The serving fleet: one shared cache, four concurrent sessions.
  auto cache = std::make_shared<PipelineCache>();
  constexpr int kUsers = 4;
  std::vector<Result<MiningResponse>> answers(
      kUsers, Result<MiningResponse>(Status::Internal("not mined")));
  std::vector<uint64_t> rebuilds(kUsers, 0);
  {
    std::vector<std::thread> users;
    for (int i = 0; i < kUsers; ++i) {
      users.emplace_back([&, i] {
        SessionOptions options;
        options.pipeline_cache = cache;
        Result<MinerSession> session =
            MinerSession::Create(data->g1, data->g2, options);
        if (!session.ok()) return;
        answers[i] = session->Mine(request);
        rebuilds[i] = session->num_rebuilds();
      });
    }
    for (std::thread& user : users) user.join();
  }

  uint64_t prepared = 0;
  for (int i = 0; i < kUsers; ++i) {
    if (!answers[i].ok()) return 1;
    prepared += rebuilds[i];
    const RankedSubgraph& top = answers[i]->graph_affinity.front();
    std::printf(
        "user %d: affinity %.3f on %zu vertices (%s the shared pipeline)\n",
        i, top.value, top.vertices.size(),
        answers[i]->telemetry.reused_cached_difference ? "reused" : "built");
  }
  const PipelineCacheStats stats = cache->stats();
  std::printf(
      "fleet of %d prepared the dataset %llu time(s): %llu hits, %llu "
      "misses, %zu bytes resident\n",
      kUsers, static_cast<unsigned long long>(prepared),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), stats.bytes);

  // Copy-on-write invalidation: one user streams an update and re-mines —
  // that session builds a fresh entry — while an untouched user keeps
  // hitting the original, still-resident one.
  SessionOptions options;
  options.pipeline_cache = cache;
  Result<MinerSession> editor =
      MinerSession::Create(data->g1, data->g2, options);
  Result<MinerSession> reader =
      MinerSession::Create(data->g1, data->g2, options);
  if (!editor.ok() || !reader.ok()) return 1;
  if (!editor->ApplyUpdate(UpdateSide::kG2, 0, 1, 10.0).ok()) return 1;
  Result<MiningResponse> edited = editor->Mine(request);
  Result<MiningResponse> unchanged = reader->Mine(request);
  if (!edited.ok() || !unchanged.ok()) return 1;
  std::printf(
      "after one user's update: editor %s, reader %s, %zu entries resident\n",
      edited->telemetry.reused_cached_difference ? "hit (!)" : "rebuilt",
      unchanged->telemetry.reused_cached_difference ? "still hits"
                                                    : "rebuilt (!)",
      cache->stats().entries);
  return 0;
}
