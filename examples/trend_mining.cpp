// Trend mining: the paper's §I motivating application.
//
// Simulates two eras of data-mining paper titles, builds the two keyword
// association graphs, and mines emerging and disappearing research topics
// with DCSGA — reproducing the workflow behind Tables V/VI. Also shows why
// single-graph dense-subgraph mining is NOT enough: the top topics of G2
// alone are dominated by stable evergreen topics.
//
// Run:  ./build/examples/trend_mining [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/newsea.h"
#include "gen/keywords.h"
#include "graph/difference.h"
#include "util/rng.h"

namespace {

using namespace dcs;

std::string TopicString(const KeywordData& data, const CliqueRecord& clique) {
  std::string out = "{";
  for (size_t i = 0; i < clique.members.size(); ++i) {
    if (i) out += ", ";
    out += data.vocabulary[clique.members[i]];
    char buf[16];
    std::snprintf(buf, sizeof(buf), " (%.2f)", clique.weights[i]);
    out += buf;
  }
  out += "}";
  return out;
}

// Mines the top-k topics of a difference graph by collecting all positive
// cliques found by the all-initializations driver (the paper's method for
// Table V).
void PrintTopTopics(const KeywordData& data, const Graph& gd, const char* tag,
                    size_t k) {
  DcsgaOptions options;
  options.collect_cliques = true;
  Result<DcsgaResult> result = RunDcsgaAllInits(gd.PositivePart(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "driver failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::vector<CliqueRecord> cliques = FilterMaximalCliques(result->cliques);
  std::sort(cliques.begin(), cliques.end(),
            [](const CliqueRecord& a, const CliqueRecord& b) {
              return a.affinity > b.affinity;
            });
  std::printf("%s\n", tag);
  for (size_t i = 0; i < std::min(k, cliques.size()); ++i) {
    std::printf("  %zu. %s   affinity diff = %.3f\n", i + 1,
                TopicString(data, cliques[i]).c_str(), cliques[i].affinity);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  KeywordConfig config;
  config.noise_vocabulary = 1500;
  config.titles_per_era = 20'000;
  Result<KeywordData> data = GenerateKeywordData(config, &rng);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("era-1 association graph: %s\n", data->g1.DebugString().c_str());
  std::printf("era-2 association graph: %s\n\n",
              data->g2.DebugString().c_str());

  // Emerging topics: dense in G2, not in G1.
  Result<Graph> gd_emerging = BuildDifferenceGraph(data->g1, data->g2);
  // Disappearing topics: the flipped difference.
  Result<Graph> gd_disappearing = BuildDifferenceGraph(data->g2, data->g1);
  if (!gd_emerging.ok() || !gd_disappearing.ok()) {
    std::fprintf(stderr, "difference construction failed\n");
    return 1;
  }
  PrintTopTopics(*data, *gd_emerging, "Top emerging topics (DCSGA on G2−G1):",
                 5);
  PrintTopTopics(*data, *gd_disappearing,
                 "Top disappearing topics (DCSGA on G1−G2):", 5);

  // The cautionary comparison of §VI-C: mining G2 alone surfaces evergreen
  // topics ("time series"), not trends.
  std::printf("For contrast — mining G2 alone (no contrast), top topics:\n");
  PrintTopTopics(*data, data->g2, "", 5);
  return 0;
}
