// Trend mining: the paper's §I motivating application.
//
// Simulates two eras of data-mining paper titles, builds the two keyword
// association graphs, and mines emerging and disappearing research topics
// with DCSGA — reproducing the workflow behind Tables V/VI. Also shows why
// single-graph dense-subgraph mining is NOT enough: the top topics of G2
// alone are dominated by stable evergreen topics.
//
// Both directions are two top-k requests (flip toggled) on one MinerSession;
// the "G2 alone" contrast is a second session whose baseline graph is empty.
//
// Run:  ./build/examples/trend_mining [seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/datasets.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "util/rng.h"

namespace {

using namespace dcs;

std::string TopicString(const KeywordData& data, const RankedSubgraph& topic) {
  std::string out = "{";
  for (size_t i = 0; i < topic.vertices.size(); ++i) {
    if (i) out += ", ";
    out += data.vocabulary[topic.vertices[i]];
    char buf[16];
    std::snprintf(buf, sizeof(buf), " (%.2f)", topic.weights[i]);
    out += buf;
  }
  out += "}";
  return out;
}

// Mines the top-k topics through the facade: a DCSGA harvest over every
// initialization, ranked by affinity difference (the paper's method for
// Table V; overlapping topics allowed).
void PrintTopTopics(const KeywordData& data, MinerSession* session, bool flip,
                    const char* tag, uint32_t k) {
  MiningRequest request;
  request.measure = Measure::kGraphAffinity;
  request.flip = flip;
  request.top_k = k;
  request.disjoint = false;
  Result<MiningResponse> response = session->Mine(request);
  if (!response.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 response.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", tag);
  const std::vector<RankedSubgraph>& topics = response->graph_affinity;
  for (size_t i = 0; i < topics.size(); ++i) {
    std::printf("  %zu. %s   affinity diff = %.3f\n", i + 1,
                TopicString(data, topics[i]).c_str(), topics[i].value);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  KeywordConfig config;
  config.noise_vocabulary = 1500;
  config.titles_per_era = 20'000;
  Result<KeywordData> data = GenerateKeywordData(config, &rng);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("era-1 association graph: %s\n", data->g1.DebugString().c_str());
  std::printf("era-2 association graph: %s\n\n",
              data->g2.DebugString().c_str());

  Result<MinerSession> session = MinerSession::Create(data->g1, data->g2);
  if (!session.ok()) {
    std::fprintf(stderr, "session setup failed\n");
    return 1;
  }
  // Emerging topics: dense in G2, not in G1. Disappearing: the flipped
  // difference — same session, second cached pipeline.
  PrintTopTopics(*data, &*session, /*flip=*/false,
                 "Top emerging topics (DCSGA on G2−G1):", 5);
  PrintTopTopics(*data, &*session, /*flip=*/true,
                 "Top disappearing topics (DCSGA on G1−G2):", 5);

  // The cautionary comparison of §VI-C: mining G2 alone surfaces evergreen
  // topics ("time series"), not trends. An empty baseline graph makes the
  // difference graph equal G2 itself.
  Result<Graph> empty_g1 =
      BuildGraphFromEdges(data->g2.NumVertices(), std::vector<WeightedEdge>{});
  if (!empty_g1.ok()) return 1;
  Result<MinerSession> no_contrast =
      MinerSession::Create(std::move(*empty_g1), data->g2);
  if (!no_contrast.ok()) return 1;
  std::printf("For contrast — mining G2 alone (no contrast), top topics:\n");
  PrintTopTopics(*data, &*no_contrast, /*flip=*/false, "", 5);
  return 0;
}
