// Async mining service — the scale-out serving shape for heavy multi-user
// traffic.
//
// A MiningService wraps one MinerSession behind a submit/poll job queue:
// clients enqueue DCS mining requests without blocking, stream weight
// updates that are fenced between jobs (each job sees exactly the graph
// snapshot of its submission point), and poll the queued → running →
// done/failed/cancelled lifecycle. This demo plays three "users" against a
// shared random contrast graph:
//   1. a burst of mixed-measure queries submitted up front,
//   2. a streaming updater that strengthens a planted clique mid-queue
//      (jobs before the fence don't see it; jobs after do),
//   3. an impatient user whose queued job is cancelled before it runs.
//
// Run:  ./build/examples/async_service [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/datasets.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "api/mining_service.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  // A 300-vertex signed contrast graph: G1 empty, G2 random — the
  // difference graph is G2 itself.
  const VertexId n = 300;
  Result<Graph> g2 = RandomSignedGraph(n, /*m=*/2400,
                                       /*positive_fraction=*/0.7,
                                       /*magnitude_lo=*/0.5,
                                       /*magnitude_hi=*/3.0, &rng);
  if (!g2.ok()) return 1;
  Result<MinerSession> session =
      MinerSession::Create(Graph(n), std::move(*g2));
  if (!session.ok()) return 1;

  MiningService service(std::move(*session));

  // User 1: a burst of queries, submitted without waiting on each other.
  std::vector<JobId> burst;
  for (int i = 0; i < 4; ++i) {
    MiningRequest request;
    request.measure = i % 2 == 0 ? Measure::kGraphAffinity : Measure::kBoth;
    request.alpha = i < 2 ? 1.0 : 2.0;
    request.ga_solver.parallelism = 0;  // auto: take the session budget
    Result<JobId> id = service.Submit(request);
    if (!id.ok()) return 1;
    burst.push_back(*id);
  }
  std::printf("submitted burst of %zu jobs, %zu pending\n", burst.size(),
              service.num_pending_jobs());

  // User 2: a breaking story — clique {10,11,12,13} surges in the live
  // graph. The update is fenced: the burst above mines the pre-update
  // snapshot, the query below mines the post-update one.
  for (VertexId u = 10; u <= 13; ++u) {
    for (VertexId v = u + 1; v <= 13; ++v) {
      if (!service.ApplyUpdate(UpdateSide::kG2, u, v, 25.0).ok()) return 1;
    }
  }
  MiningRequest after_update;
  after_update.measure = Measure::kGraphAffinity;
  Result<JobId> post_fence = service.Submit(after_update);
  if (!post_fence.ok()) return 1;

  // User 3: submits the same query, changes their mind while it queues.
  Result<JobId> impatient = service.Submit(after_update);
  if (!impatient.ok()) return 1;
  Result<JobStatus> cancelled = service.Cancel(*impatient);
  if (!cancelled.ok()) return 1;
  std::printf("impatient job %llu: %s\n",
              static_cast<unsigned long long>(*impatient),
              JobStateToString(cancelled->state));

  // Harvest. Wait() blocks per job; the burst all mined the pre-update
  // snapshot, so their top clique ignores the surge.
  for (const JobId id : burst) {
    Result<JobStatus> status = service.Wait(id);
    if (!status.ok()) return 1;
    const auto& ga = status->response.graph_affinity;
    std::printf(
        "job %llu: %s in %.1f ms (queued %.1f ms), top affinity %s= %.3f\n",
        static_cast<unsigned long long>(id), JobStateToString(status->state),
        status->run_seconds * 1e3, status->queue_seconds * 1e3,
        ga.empty() ? "(none) " : "", ga.empty() ? 0.0 : ga.front().value);
  }
  Result<JobStatus> post = service.Wait(*post_fence);
  if (!post.ok() || post->state != JobState::kDone) return 1;
  const RankedSubgraph& story = post->response.graph_affinity.front();
  std::printf("post-fence job %llu: affinity %.3f on {",
              static_cast<unsigned long long>(*post_fence), story.value);
  for (size_t i = 0; i < story.vertices.size(); ++i) {
    std::printf("%s%u", i ? "," : "", story.vertices[i]);
  }
  std::printf("}  <- the surged clique\n");

  service.Drain();
  std::printf("drained; %llu jobs served\n",
              static_cast<unsigned long long>(service.num_submitted()));
  return 0;
}
