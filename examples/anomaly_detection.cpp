// Anomaly detection against historical expectation — the §I application of
// "detecting current anomalies against historical data" (traffic hotspot
// clutters, emerging communities, dark networks).
//
// We model a sensor grid: G1 holds the *expected* pairwise co-activity of
// road sensors (from history), G2 the *observed* co-activity today. A clutter
// of sensors around an incident lights up together far above expectation;
// one MinerSession request on G2 − G1 localizes it under both measures.
//
// Run:  ./build/examples/anomaly_detection [seed]

#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "api/miner_session.h"
#include "api/mining.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  // A 20x20 grid of sensors; neighbors co-activate.
  constexpr int kSide = 20;
  constexpr VertexId kNumSensors = kSide * kSide;
  auto at = [](int r, int c) { return static_cast<VertexId>(r * kSide + c); };

  std::vector<WeightedEdge> expected, observed;
  for (int r = 0; r < kSide; ++r) {
    for (int c = 0; c < kSide; ++c) {
      // Expected co-activity with right and down neighbors.
      const double base = 2.0 + rng.Uniform(0.0, 1.0);
      if (c + 1 < kSide) {
        expected.push_back({at(r, c), at(r, c + 1), base});
        observed.push_back(
            {at(r, c), at(r, c + 1), base + rng.Uniform(-0.4, 0.4)});
      }
      if (r + 1 < kSide) {
        expected.push_back({at(r, c), at(r + 1, c), base});
        observed.push_back(
            {at(r, c), at(r + 1, c), base + rng.Uniform(-0.4, 0.4)});
      }
    }
  }

  // Incident: a 3x3 block near the center co-activates wildly, including
  // diagonal pairs that normally never co-fire.
  std::vector<VertexId> incident;
  for (int r = 9; r < 12; ++r) {
    for (int c = 9; c < 12; ++c) incident.push_back(at(r, c));
  }
  for (size_t i = 0; i < incident.size(); ++i) {
    for (size_t j = i + 1; j < incident.size(); ++j) {
      observed.push_back(
          {incident[i], incident[j], 5.0 + rng.Uniform(0.0, 2.0)});
    }
  }

  Result<Graph> g1 = BuildGraphFromEdges(kNumSensors, expected);
  Result<Graph> g2 = BuildGraphFromEdges(kNumSensors, observed);
  if (!g1.ok() || !g2.ok()) return 1;
  Result<MinerSession> session =
      MinerSession::Create(std::move(*g1), std::move(*g2));
  if (!session.ok()) return 1;

  Result<Graph> gd = session->DifferenceSnapshot();
  if (!gd.ok()) return 1;
  std::printf("observed-vs-expected difference graph: %s\n\n",
              gd->DebugString().c_str());

  MiningRequest request;
  request.measure = Measure::kBoth;
  Result<MiningResponse> response = session->Mine(request);
  if (!response.ok() || response->average_degree.empty() ||
      response->graph_affinity.empty()) {
    std::fprintf(stderr, "mining failed\n");
    return 1;
  }
  const RankedSubgraph& hotspot = response->average_degree.front();
  const RankedSubgraph& core = response->graph_affinity.front();
  std::printf("DCSAD hotspot: %zu sensors, density anomaly %.2f\n",
              hotspot.vertices.size(), hotspot.value);
  std::printf("DCSGA hotspot core: %zu sensors, affinity anomaly %.2f\n\n",
              core.vertices.size(), core.value);

  // Score recovery against the planted incident block.
  std::set<VertexId> truth(incident.begin(), incident.end());
  auto overlap = [&](const std::vector<VertexId>& found) {
    size_t hits = 0;
    for (VertexId v : found) hits += truth.contains(v) ? 1 : 0;
    return std::pair<size_t, size_t>(hits, found.size());
  };
  auto [ad_hits, ad_size] = overlap(hotspot.vertices);
  auto [ga_hits, ga_size] = overlap(core.vertices);
  std::printf("incident block: 9 sensors at rows/cols 9-11\n");
  std::printf("  DCSAD  recovered %zu/9 (subset size %zu)\n", ad_hits, ad_size);
  std::printf("  DCSGA  recovered %zu/9 (support size %zu)\n", ga_hits,
              ga_size);
  std::printf("\ngrid map of the DCSGA hotspot ('#' = flagged):\n");
  std::set<VertexId> flagged(core.vertices.begin(), core.vertices.end());
  for (int r = 8; r < 13; ++r) {
    std::printf("  ");
    for (int c = 8; c < 13; ++c) {
      std::printf("%c", flagged.contains(at(r, c)) ? '#' : '.');
    }
    std::printf("\n");
  }
  return 0;
}
