// Emerging / disappearing co-author group mining — the §VI-B experiment as a
// runnable example, on the synthetic DBLP analog.
//
// Demonstrates the Weighted vs Discrete difference-graph settings and both
// density measures, printing Table IV-style rows with planted-group recovery.
//
// Run:  ./build/examples/coauthor_groups [seed]

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "core/dcs_greedy.h"
#include "core/newsea.h"
#include "gen/coauthor.h"
#include "graph/difference.h"
#include "graph/stats.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dcs;

// Which planted group does a found vertex set match best?
std::string BestMatch(const std::vector<VertexId>& found,
                      const CoauthorData& data) {
  const std::set<VertexId> f(found.begin(), found.end());
  std::string best_name = "(none)";
  double best_score = 0.0;
  auto consider = [&](const PlantedGroup& group) {
    size_t inter = 0;
    for (VertexId v : group.members) inter += f.contains(v) ? 1 : 0;
    const double score =
        static_cast<double>(inter) /
        static_cast<double>(f.size() + group.members.size() - inter);
    if (score > best_score) {
      best_score = score;
      best_name = group.name;
    }
  };
  for (const auto& group : data.emerging) consider(group);
  for (const auto& group : data.disappearing) consider(group);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (J=%.2f)", best_name.c_str(),
                best_score);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2018;
  Rng rng(seed);

  CoauthorConfig config;
  config.num_authors = 8000;
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  TablePrinter table("Co-author contrast groups (synthetic DBLP analog)",
                     {"Setting", "GD Type", "Density", "#Authors",
                      "Pos.Clique?", "Density Diff", "Matched planted group"});

  for (const bool discrete : {false, true}) {
    for (const bool disappearing : {false, true}) {
      Result<Graph> gd_raw =
          disappearing ? BuildDifferenceGraph(data->g2, data->g1)
                       : BuildDifferenceGraph(data->g1, data->g2);
      if (!gd_raw.ok()) return 1;
      Graph gd = *gd_raw;
      if (discrete) {
        Result<Graph> d = DiscretizeWeights(gd, DiscretizeSpec{});
        if (!d.ok()) return 1;
        gd = *d;
      }
      const char* setting = discrete ? "Discrete" : "Weighted";
      const char* type = disappearing ? "Disappearing" : "Emerging";

      Result<DcsadResult> ad = RunDcsGreedy(gd);
      if (!ad.ok()) return 1;
      table.AddRow({setting, type, "Average Degree",
                    TablePrinter::Fmt(uint64_t{ad->subset.size()}),
                    TablePrinter::YesNo(IsPositiveClique(gd, ad->subset)),
                    TablePrinter::Fmt(ad->density, 2),
                    BestMatch(ad->subset, *data)});

      Result<DcsgaResult> ga = RunNewSea(gd.PositivePart());
      if (!ga.ok()) return 1;
      table.AddRow({setting, type, "Graph Affinity",
                    TablePrinter::Fmt(uint64_t{ga->support.size()}),
                    TablePrinter::YesNo(IsPositiveClique(gd, ga->support)),
                    TablePrinter::Fmt(ga->affinity, 3),
                    BestMatch(ga->support, *data)});
    }
  }
  table.Print();
  return 0;
}
