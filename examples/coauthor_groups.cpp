// Emerging / disappearing co-author group mining — the §VI-B experiment as a
// runnable example, on the synthetic DBLP analog.
//
// Demonstrates the Weighted vs Discrete difference-graph settings and both
// density measures through one MinerSession: the four setting combinations
// are four MiningRequests (flip × discretize) against the same cached
// session, printing Table IV-style rows with planted-group recovery.
//
// Run:  ./build/examples/coauthor_groups [seed]

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "api/datasets.h"
#include "api/miner_session.h"
#include "api/mining.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dcs;

// Which planted group does a found vertex set match best?
std::string BestMatch(const std::vector<VertexId>& found,
                      const CoauthorData& data) {
  const std::set<VertexId> f(found.begin(), found.end());
  std::string best_name = "(none)";
  double best_score = 0.0;
  auto consider = [&](const PlantedGroup& group) {
    size_t inter = 0;
    for (VertexId v : group.members) inter += f.contains(v) ? 1 : 0;
    const double score =
        static_cast<double>(inter) /
        static_cast<double>(f.size() + group.members.size() - inter);
    if (score > best_score) {
      best_score = score;
      best_name = group.name;
    }
  };
  for (const auto& group : data.emerging) consider(group);
  for (const auto& group : data.disappearing) consider(group);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (J=%.2f)", best_name.c_str(),
                best_score);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2018;
  Rng rng(seed);

  CoauthorConfig config;
  config.num_authors = 8000;
  Result<CoauthorData> data = GenerateCoauthorData(config, &rng);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  Result<MinerSession> session = MinerSession::Create(data->g1, data->g2);
  if (!session.ok()) {
    std::fprintf(stderr, "session setup failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("Co-author contrast groups (synthetic DBLP analog)",
                     {"Setting", "GD Type", "Density", "#Authors",
                      "Pos.Clique?", "Density Diff", "Matched planted group"});

  for (const bool discrete : {false, true}) {
    for (const bool disappearing : {false, true}) {
      MiningRequest request;
      request.measure = Measure::kBoth;
      request.flip = disappearing;
      if (discrete) request.discretize = DiscretizeSpec{};
      // Report the best subgraph of every setting even when its contrast is
      // non-positive, so the table always has all eight rows.
      request.min_density = std::numeric_limits<double>::lowest();
      request.min_affinity = std::numeric_limits<double>::lowest();

      Result<MiningResponse> response = session->Mine(request);
      if (!response.ok()) {
        std::fprintf(stderr, "mining failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      const char* setting = discrete ? "Discrete" : "Weighted";
      const char* type = disappearing ? "Disappearing" : "Emerging";

      if (!response->average_degree.empty()) {
        const RankedSubgraph& ad = response->average_degree.front();
        table.AddRow({setting, type, "Average Degree",
                      TablePrinter::Fmt(uint64_t{ad.vertices.size()}),
                      TablePrinter::YesNo(ad.positive_clique),
                      TablePrinter::Fmt(ad.value, 2),
                      BestMatch(ad.vertices, *data)});
      }
      if (!response->graph_affinity.empty()) {
        const RankedSubgraph& ga = response->graph_affinity.front();
        table.AddRow({setting, type, "Graph Affinity",
                      TablePrinter::Fmt(uint64_t{ga.vertices.size()}),
                      TablePrinter::YesNo(ga.positive_clique),
                      TablePrinter::Fmt(ga.value, 3),
                      BestMatch(ga.vertices, *data)});
      }
    }
  }
  table.Print();
  return 0;
}
